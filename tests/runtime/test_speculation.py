"""Speculation and rollback end-to-end: guess / affirm / deny / replay."""

import pytest

from repro.core import AidStatus
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency, Span


def test_guess_affirm_keeps_optimistic_path():
    system = HopeSystem()
    path = []

    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        if (yield p.guess(x)):
            path.append("optimistic")
            yield p.compute(1.0)
        else:
            path.append("pessimistic")
            yield p.compute(5.0)
        path.append("done")

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(2.0)
        yield p.affirm(msg.payload)

    system.spawn("worker", worker)
    system.spawn("verifier", verifier)
    system.run()
    assert path == ["optimistic", "done"]
    assert system.procs["worker"].restarts == 0


def test_guess_deny_rolls_back_to_pessimistic_path():
    system = HopeSystem()
    path = []

    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        if (yield p.guess(x)):
            path.append("optimistic")
            yield p.compute(10.0)
        else:
            path.append("pessimistic")
            yield p.compute(1.0)
        path.append("done")

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(2.0)
        yield p.deny(msg.payload)

    system.spawn("worker", worker)
    system.spawn("verifier", verifier)
    system.run()
    # the optimistic branch ran, was rolled back, then the pessimistic ran
    assert path == ["optimistic", "pessimistic", "done"]
    assert system.procs["worker"].restarts == 1
    assert system.stats()["rollbacks"] == 1


def test_deny_before_guess_skips_speculation():
    """guess on an already-denied AID returns False immediately."""
    system = HopeSystem()
    path = []

    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        yield p.compute(10.0)                # verifier denies meanwhile
        if (yield p.guess(x)):
            path.append("optimistic")
        else:
            path.append("pessimistic")

    def verifier(p):
        msg = yield p.recv()
        yield p.deny(msg.payload)

    system.spawn("worker", worker)
    system.spawn("verifier", verifier)
    system.run()
    assert path == ["pessimistic"]
    assert system.procs["worker"].restarts == 0


def test_rollback_restores_pre_guess_state_via_replay():
    """Work done before the guess must survive the rollback exactly."""
    system = HopeSystem()
    observed = []

    def worker(p):
        acc = 0
        for _ in range(3):
            acc += int((yield p.random()) * 1000)
        pre_guess = acc
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        if (yield p.guess(x)):
            acc += 10_000                     # speculative mutation
            yield p.compute(5.0)
        observed.append((pre_guess, acc))

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(1.0)
        yield p.deny(msg.payload)

    system.spawn("worker", worker)
    system.spawn("verifier", verifier)
    system.run()
    [(pre_guess, final)] = observed
    assert final == pre_guess                 # speculative +10_000 undone


def test_wasted_time_accounted_on_rollback():
    system = HopeSystem()

    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        if (yield p.guess(x)):
            yield p.compute(7.0)

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(3.0)
        yield p.deny(msg.payload)

    system.spawn("worker", worker)
    system.spawn("verifier", verifier)
    system.run()
    assert system.stats()["wasted_time"] == pytest.approx(3.0)


def test_rollback_overhead_charged():
    system = HopeSystem(rollback_overhead=5.0)
    times = []

    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        if (yield p.guess(x)):
            yield p.compute(100.0)
        times.append((yield p.now()))

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(2.0)
        yield p.deny(msg.payload)

    system.spawn("worker", worker)
    system.spawn("verifier", verifier)
    system.run()
    # deny at t=2, restart at t=7, falls straight through the False branch
    assert times == [7.0]


def test_message_from_rolled_back_interval_is_retracted():
    """§1: a message sent speculatively dies with its interval."""
    system = HopeSystem(latency=ConstantLatency(4.0))
    received = []

    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)          # arrives at t=4
        if (yield p.guess(x)):
            yield p.compute(2.0)
            yield p.send("bystander", "speculative-hello")  # in flight t=2..6
        yield p.compute(1.0)

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(1.0)
        yield p.deny(msg.payload)            # deny at t=5: retracts in-flight msg

    def bystander(p):
        msg = yield p.recv(timeout=50.0)
        received.append(msg)

    system.spawn("worker", worker)
    system.spawn("verifier", verifier)
    system.spawn("bystander", bystander)
    system.run()
    from repro.sim import TIMED_OUT

    assert received == [TIMED_OUT]


def test_tagged_message_makes_receiver_speculative_and_rolls_back():
    """§3: receiving a tagged message implicitly guesses its AIDs."""
    system = HopeSystem()
    events = []

    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        if (yield p.guess(x)):
            yield p.send("downstream", "spec-data")
        yield p.compute(1.0)

    def downstream(p):
        msg = yield p.recv()
        events.append(("got", msg.payload))
        yield p.compute(100.0)               # long speculative work
        events.append("finished")            # must not happen before deny

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(5.0)
        yield p.deny(msg.payload)

    system.spawn("worker", worker)
    system.spawn("verifier", verifier)
    system.spawn("downstream", downstream)
    system.run()
    # downstream received, rolled back, and the dead message never returned
    assert events == [("got", "spec-data")]
    assert system.procs["downstream"].restarts == 1
    assert not system.is_done("downstream")  # waiting for a new message


def test_tagged_message_receiver_survives_affirm():
    system = HopeSystem()
    events = []

    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        if (yield p.guess(x)):
            yield p.send("downstream", "spec-data")
        yield p.compute(1.0)

    def downstream(p):
        msg = yield p.recv()
        yield p.compute(2.0)
        events.append(("done", msg.payload))

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(5.0)
        yield p.affirm(msg.payload)

    system.spawn("worker", worker)
    system.spawn("verifier", verifier)
    system.spawn("downstream", downstream)
    system.run()
    assert events == [("done", "spec-data")]
    assert system.procs["downstream"].restarts == 0
    assert system.stats()["implicit_guesses"] == 1


def test_cascading_rollback_chain():
    """A deny at the root rolls back a whole chain of tagged receivers."""
    depth = 5
    system = HopeSystem()

    def root(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        if (yield p.guess(x)):
            yield p.send("n0", 0)
        yield p.compute(1.0)

    def relay(p, i):
        msg = yield p.recv()
        if i + 1 < depth:
            yield p.send(f"n{i + 1}", msg.payload + 1)
        yield p.compute(1.0)

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(20.0)                # let the chain propagate
        yield p.deny(msg.payload)

    system.spawn("root", root)
    system.spawn("verifier", verifier)
    for i in range(depth):
        system.spawn(f"n{i}", relay, i)
    system.run()
    stats = system.stats()
    assert stats["rollbacks"] == depth + 1   # root + every relay
    for i in range(depth):
        assert system.procs[f"n{i}"].restarts == 1


def test_redelivery_of_surviving_message_after_rollback():
    """A message consumed inside a discarded interval, whose sender was
    definite, must be redelivered to the restarted incarnation."""
    system = HopeSystem()
    deliveries = []

    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        if (yield p.guess(x)):
            msg = yield p.recv()             # consumed speculatively
            deliveries.append(("spec", msg.payload))
            yield p.compute(50.0)
        else:
            msg = yield p.recv()             # must see the same message again
            deliveries.append(("definite", msg.payload))

    def definite_sender(p):
        yield p.compute(1.0)
        yield p.send("worker", "durable")

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(10.0)
        yield p.deny(msg.payload)

    system.spawn("worker", worker)
    system.spawn("definite_sender", definite_sender)
    system.spawn("verifier", verifier)
    system.run()
    assert deliveries == [("spec", "durable"), ("definite", "durable")]


def test_nested_guesses_roll_back_independently():
    system = HopeSystem()
    trail = []

    def worker(p):
        x = yield p.aid_init("x")
        y = yield p.aid_init("y")
        yield p.send("judge", (x, y))
        gx = yield p.guess(x)
        trail.append(("x", gx))
        gy = yield p.guess(y)
        trail.append(("y", gy))
        yield p.compute(1.0)

    def judge(p):
        msg = yield p.recv()
        x, y = msg.payload
        yield p.compute(2.0)
        yield p.deny(y)                      # only the inner interval dies
        yield p.compute(2.0)
        yield p.affirm(x)

    system.spawn("worker", worker)
    system.spawn("judge", judge)
    system.run()
    # The raw closure sees the replayed prefix re-execute: after the y
    # rollback, the surviving guess(x)=True is replayed (("x", True) appears
    # again) and then guess(y) re-executes live returning False.  Use
    # p.emit for replay-clean observations (see test_outputs.py).
    assert trail == [("x", True), ("y", True), ("x", True), ("y", False)]
    assert system.procs["worker"].restarts == 1
    assert system.stats()["finalizes"] >= 1
