"""Basic HOPE runtime behaviour: spawn, compute, messaging, effects."""

import pytest

from repro.core import AidStatus, HopeError
from repro.runtime import (
    AidHandle,
    HopeSystem,
    ReceivedMessage,
    SpeculativeSpawnError,
)
from repro.sim import ConstantLatency, TIMED_OUT, Tracer


def test_compute_advances_time_and_returns_result():
    system = HopeSystem()

    def body(p):
        yield p.compute(3.0)
        now = yield p.now()
        return now

    system.spawn("p", body)
    system.run()
    assert system.result_of("p") == 3.0


def test_spawn_duplicate_name_rejected():
    system = HopeSystem()

    def body(p):
        yield p.compute(1.0)

    system.spawn("p", body)
    with pytest.raises(HopeError):
        system.spawn("p", body)


def test_send_recv_roundtrip_with_latency():
    system = HopeSystem(latency=ConstantLatency(2.0))
    got = []

    def sender(p):
        yield p.compute(1.0)
        yield p.send("receiver", "ping")

    def receiver(p):
        msg = yield p.recv()
        got.append((msg.payload, msg.src))
        now = yield p.now()
        got.append(now)

    system.spawn("sender", sender)
    system.spawn("receiver", receiver)
    system.run()
    assert got == [("ping", "sender"), 3.0]


def test_recv_timeout():
    system = HopeSystem()
    got = []

    def lonely(p):
        msg = yield p.recv(timeout=4.0)
        got.append(msg)

    system.spawn("lonely", lonely)
    system.run()
    assert got == [TIMED_OUT]


def test_definite_send_carries_no_tags():
    system = HopeSystem()

    def sender(p):
        yield p.send("rx", "plain")

    def rx(p):
        yield p.recv()

    system.spawn("sender", sender)
    system.spawn("rx", rx)
    system.run()
    assert system.network.tag_count_total == 0


def test_aid_init_returns_handle():
    system = HopeSystem()
    handles = []

    def body(p):
        x = yield p.aid_init("my-assumption")
        handles.append(x)

    system.spawn("p", body)
    system.run()
    [x] = handles
    assert isinstance(x, AidHandle)
    assert x.name == "my-assumption"
    assert system.aid_status(x) is AidStatus.PENDING


def test_random_effect_draws_from_process_stream():
    values = {}

    def body(p):
        draws = []
        for _ in range(3):
            draws.append((yield p.random()))
        values[p.name] = draws

    s1 = HopeSystem(seed=5)
    s1.spawn("a", body)
    s1.spawn("b", body)
    s1.run()
    run1 = dict(values)
    values.clear()
    s2 = HopeSystem(seed=5)
    s2.spawn("a", body)
    s2.spawn("b", body)
    s2.run()
    assert values == run1                     # deterministic per seed
    assert run1["a"] != run1["b"]             # independent per process


def test_spawn_effect_creates_process():
    system = HopeSystem()
    log = []

    def child(p, tag):
        yield p.compute(1.0)
        log.append(tag)

    def parent(p):
        name = yield p.spawn("kid", child, "hello")
        log.append(name)

    system.spawn("parent", parent)
    system.run()
    assert log == ["kid", "hello"]


def test_spawn_while_speculative_rejected():
    system = HopeSystem()

    def child(p):
        yield p.compute(1.0)

    def parent(p):
        x = yield p.aid_init("x")
        yield p.guess(x)
        yield p.spawn("kid", child)

    system.spawn("parent", parent)
    with pytest.raises(SpeculativeSpawnError):
        system.run()


def test_non_hope_effect_rejected():
    from repro.sim import Timeout

    system = HopeSystem()

    def body(p):
        yield Timeout(1.0)

    system.spawn("p", body)
    with pytest.raises(HopeError):
        system.run()


def test_result_of_unfinished_process_raises():
    system = HopeSystem()

    def body(p):
        yield p.recv()  # waits forever

    system.spawn("p", body)
    system.run()
    with pytest.raises(HopeError):
        system.result_of("p")


def test_tracer_integration():
    tracer = Tracer()
    system = HopeSystem(trace=tracer)

    def body(p):
        x = yield p.aid_init("x")
        yield p.guess(x)
        yield p.affirm(x)

    system.spawn("p", body)
    system.run()
    categories = {r.category for r in tracer.records}
    assert {"spawn", "aid_init", "guess", "affirm", "exit"} <= categories
