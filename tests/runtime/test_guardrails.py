"""Guardrails: replay divergence detection, stats counters, misc edges."""

import pytest

from repro.core import AidStatus
from repro.runtime import HopeSystem, ReplayDivergenceError


def test_nondeterministic_body_caught_at_replay():
    """A body that consults unlogged mutable state diverges on replay —
    the runtime must refuse loudly instead of silently corrupting."""
    system = HopeSystem()
    sneaky = {"runs": 0}

    def worker(p):
        sneaky["runs"] += 1
        if sneaky["runs"] == 1:
            yield p.compute(1.0)          # first incarnation: compute
        else:
            yield p.now()                 # replay: different effect!
        x = yield p.aid_init("x")
        yield p.send("judge", x)
        if (yield p.guess(x)):
            yield p.compute(5.0)

    def judge(p):
        msg = yield p.recv()
        yield p.compute(1.0)
        yield p.deny(msg.payload)

    system.spawn("worker", worker)
    system.spawn("judge", judge)
    with pytest.raises(ReplayDivergenceError, match="not deterministic"):
        system.run()


def test_stats_aid_status_counters():
    system = HopeSystem()

    def worker(p):
        a = yield p.aid_init("a")
        b = yield p.aid_init("b")
        c = yield p.aid_init("c")
        yield p.send("judge", (a, b))
        yield p.guess(c)                  # c stays pending forever
        yield p.compute(1.0)

    def judge(p):
        msg = yield p.recv()
        a, b = msg.payload
        yield p.affirm(a)
        yield p.deny(b)

    system.spawn("worker", worker)
    system.spawn("judge", judge)
    system.run()
    stats = system.stats()
    assert stats["aids_affirmed"] == 1
    assert stats["aids_denied"] == 1
    assert stats["aids_pending"] == 1


def test_pending_aids_lists_unresolved():
    system = HopeSystem()

    def worker(p):
        x = yield p.aid_init("never-resolved")
        yield p.guess(x)
        yield p.compute(1.0)

    system.spawn("worker", worker)
    system.run()
    [aid] = system.pending_aids()
    assert aid.name == "never-resolved"
    assert aid.status is AidStatus.PENDING


def test_is_done_and_result_roundtrip():
    system = HopeSystem()

    def worker(p):
        yield p.compute(2.0)
        return "finished-value"

    system.spawn("worker", worker)
    assert not system.is_done("worker")
    system.run()
    assert system.is_done("worker")
    assert system.result_of("worker") == "finished-value"
