"""The paper's §5–6 lemmas and theorems, one named test each.

These are the executable counterparts of the proofs: each test builds
the smallest machine state the statement quantifies over and checks the
claimed behaviour.  Broader random coverage lives in test_properties.py
and repro.verify.
"""

import pytest

from repro.core import (
    AidStatus,
    IntervalState,
    Machine,
)


@pytest.fixture
def machine():
    m = Machine(strict=False)
    for name in ("p", "q", "r", "judge"):
        m.create_process(name)
    return m


# ---------------------------------------------------------------------------
# Lemma 5.1: X ∈ A.IDO  ⟺  A ∈ X.DOM
# ---------------------------------------------------------------------------
def test_lemma_5_1_symmetry_through_all_operations(machine):
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    machine.guess("p", y)
    machine.guess_many("q", [x])
    machine.guess("r", y)

    def assert_symmetric():
        for aid in (x, y):
            for record in machine.processes.values():
                for interval in record.speculative:
                    assert (aid in interval.ido) == (interval in aid.dom)

    assert_symmetric()
    machine.affirm("r", x)           # speculative affirm re-points DOM/IDO
    assert_symmetric()
    machine.deny("judge", y)         # definite deny clears both sides
    assert_symmetric()
    machine.check_invariants()


# ---------------------------------------------------------------------------
# Theorem 5.1: rollback of A rolls back every interval after A
# ---------------------------------------------------------------------------
def test_theorem_5_1_rollback_truncates_everything_after(machine):
    x = machine.aid_init("x")
    aids = [machine.aid_init(f"a{i}") for i in range(4)]
    machine.guess("p", x)
    target = machine.process("p").current
    later = []
    for aid in aids:
        machine.guess("p", aid)
        later.append(machine.process("p").current)
    # the IDO-subset chain the proof is built on
    chain = [target] + later
    for earlier, after in zip(chain, chain[1:]):
        assert earlier.ido <= after.ido
    machine.deny("judge", x)
    assert target.state is IntervalState.ROLLED_BACK
    for interval in later:
        assert interval.state is IntervalState.ROLLED_BACK
    # Del(H, A): the surviving history predates A's guess point
    for entry in machine.process("p").history:
        assert entry.index <= target.start_index


def test_theorem_5_1_earlier_intervals_survive(machine):
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    outer = machine.process("p").current
    machine.guess("p", y)
    machine.deny("judge", y)
    assert outer.state is IntervalState.SPECULATIVE


# ---------------------------------------------------------------------------
# Theorem 5.2: once A.IDO = ∅ (definite), A is never rolled back
# ---------------------------------------------------------------------------
def test_theorem_5_2_definite_interval_immune_to_all_later_denies(machine):
    x = machine.aid_init("x")
    machine.guess("p", x)
    survivor = machine.process("p").current
    machine.affirm("judge", x)
    assert survivor.state is IntervalState.DEFINITE
    # pile on more speculation and kill all of it
    for i in range(3):
        z = machine.aid_init(f"z{i}")
        machine.guess("p", z)
        machine.deny("judge", z)
    assert survivor.state is IntervalState.DEFINITE
    assert machine.process("p").rollback_count == 3


# ---------------------------------------------------------------------------
# Lemma 6.1: speculative affirm + affirmer made definite ≡ definite affirm
# ---------------------------------------------------------------------------
def test_lemma_6_1_affirm_transitivity(machine):
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)            # B: depends on x
    dependent = machine.process("p").current
    machine.guess("q", y)            # A: depends on y
    machine.affirm("q", x)           # speculative affirm of x by A
    assert x.status is AidStatus.PENDING
    assert dependent.ido == {y}      # x replaced by A's dependencies
    machine.affirm("judge", y)       # A becomes definite
    # same end state as a definite affirm(x): B definite, x affirmed
    assert dependent.state is IntervalState.DEFINITE
    assert x.status is AidStatus.AFFIRMED


# ---------------------------------------------------------------------------
# Lemma 6.2 / Theorem 6.1: definite affirms on all of B.IDO finalize B
# ---------------------------------------------------------------------------
def test_lemma_6_2_all_definite_affirms_finalize(machine):
    aids = [machine.aid_init(f"a{i}") for i in range(3)]
    for aid in aids:
        machine.guess("p", aid)
    newest = machine.process("p").current
    assert newest.ido == set(aids)
    for aid in aids:
        machine.affirm("judge", aid)
    assert newest.state is IntervalState.DEFINITE
    assert machine.process("p").is_definite


def test_theorem_6_1_mixed_definite_and_speculative_affirms(machine):
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    machine.guess("p", y)
    victim = machine.process("p").current
    z = machine.aid_init("z")
    machine.guess("q", z)
    machine.affirm("q", x)           # speculative (q depends on z)
    machine.affirm("judge", y)       # definite
    assert victim.state is IntervalState.SPECULATIVE   # still rides on z
    machine.affirm("judge", z)       # q definite ⇒ its affirm(x) definite
    assert victim.state is IntervalState.DEFINITE


# ---------------------------------------------------------------------------
# Theorem 6.2: finalize(B) occurs IFF affirm applied to all of B.IDO
# ---------------------------------------------------------------------------
def test_theorem_6_2_no_finalize_while_any_dependency_unresolved(machine):
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    machine.guess("p", y)
    interval = machine.process("p").current
    machine.affirm("judge", x)
    assert interval.state is IntervalState.SPECULATIVE  # y still pending
    assert interval.ido == {y}
    machine.affirm("judge", y)
    assert interval.state is IntervalState.DEFINITE


# ---------------------------------------------------------------------------
# Lemma 6.3: a speculative affirm's AID is definite only if the affirmer's
# dependencies are
# ---------------------------------------------------------------------------
def test_lemma_6_3_affirmed_only_with_upstream(machine):
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    machine.guess("q", y)
    machine.affirm("q", x)           # x now "depends on" y
    assert x.status is AidStatus.PENDING
    machine.deny("judge", y)         # upstream fails
    assert x.status is AidStatus.PENDING      # x never became affirmed
    assert x.speculative_affirmer is None     # released for re-resolution
    assert machine.process("p").rollback_count == 1


# ---------------------------------------------------------------------------
# Corollary 6.1: AID depends-on is transitive
# ---------------------------------------------------------------------------
def test_corollary_6_1_dependence_chain(machine):
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    z = machine.aid_init("z")
    machine.guess("p", x)            # someone depends on x
    machine.guess("q", y)
    machine.affirm("q", x)           # x depends on y
    machine.guess("r", z)
    machine.affirm("r", y)           # y depends on z
    assert x.status is AidStatus.PENDING
    assert y.status is AidStatus.PENDING
    machine.affirm("judge", z)       # resolving z resolves the whole chain
    assert y.status is AidStatus.AFFIRMED
    assert x.status is AidStatus.AFFIRMED
    assert machine.process("p").is_definite


def test_corollary_6_1_denial_propagates_down_the_chain(machine):
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    z = machine.aid_init("z")
    machine.guess("p", x)
    machine.guess("q", y)
    machine.affirm("q", x)
    machine.guess("r", z)
    machine.affirm("r", y)
    machine.deny("judge", z)
    # every interval in the chain rolled back; nothing got affirmed
    for name in ("p", "q", "r"):
        assert machine.process(name).rollback_count == 1
    assert x.status is AidStatus.PENDING
    assert y.status is AidStatus.PENDING


# ---------------------------------------------------------------------------
# Theorem 6.3: free_of(X) ⇒ never dependent on X, or rolled back
# ---------------------------------------------------------------------------
def test_theorem_6_3_violation_rolls_back(machine):
    x = machine.aid_init("x")
    machine.guess_many("p", [x])     # p received a tagged message
    machine.free_of("p", x)
    assert x.status is AidStatus.DENIED
    assert machine.process("p").rollback_count == 1


def test_theorem_6_3_stale_tags_cannot_reintroduce_dependence(machine):
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("q", x)            # someone else depends on x
    machine.guess("p", y)
    machine.free_of("p", x)          # speculative affirm path
    # a stale message tagged {x} arrives at p afterwards
    live, deps = machine.resolve_tags([x])
    assert live and x not in deps    # x resolves through p's own deps
    machine.guess_many("p", deps)
    assert x not in machine.process("p").current.ido
    machine.check_invariants()
