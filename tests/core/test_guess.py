"""Tests for guess (Eq 1-6) and interval creation."""

import pytest

from repro.core import AidStatus, Machine, ResolutionConflictError


@pytest.fixture
def machine():
    return Machine(strict=True)


def test_guess_returns_true_and_creates_interval(machine):
    machine.create_process("p")
    x = machine.aid_init("x")
    assert machine.guess("p", x) is True
    record = machine.process("p")
    assert record.g is True
    assert record.current is not None
    assert record.current.ido == {x}
    assert record.current in x.dom


def test_guess_checkpoint_records_pid_and_ps(machine):
    machine.create_process("p")
    x = machine.aid_init("x")
    machine.guess("p", x, ps="checkpoint-7")
    interval = machine.process("p").current
    assert interval.pid == "p"
    assert interval.ps == "checkpoint-7"


def test_nested_guess_inherits_dependencies(machine):
    """Eq 3: A.IDO = (Si.I).IDO ∪ {X}."""
    machine.create_process("p")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    first = machine.process("p").current
    machine.guess("p", y)
    second = machine.process("p").current
    assert second is not first
    assert second.ido == {x, y}
    assert first.ido == {x}
    assert second.parent is first
    assert machine.process("p").speculative == {first, second}


def test_guess_adds_interval_to_dom(machine):
    """Eq 4 plus Lemma 5.1 symmetry."""
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.guess("p", x)
    machine.guess("q", x)
    assert {iv.pid for iv in x.dom} == {"p", "q"}
    machine.check_invariants()


def test_guess_on_affirmed_aid_returns_true_without_interval(machine):
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.affirm("q", x)
    assert x.status is AidStatus.AFFIRMED
    assert machine.guess("p", x) is True
    assert machine.process("p").current is None


def test_guess_on_denied_aid_returns_false_without_interval(machine):
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.deny("q", x)
    assert machine.guess("p", x) is False
    assert machine.process("p").g is False
    assert machine.process("p").current is None


def test_guess_same_aid_twice_creates_two_intervals(machine):
    """An explicit guess always creates a checkpoint, even if already dependent."""
    machine.create_process("p")
    x = machine.aid_init("x")
    machine.guess("p", x)
    machine.guess("p", x)
    record = machine.process("p")
    assert len(record.speculative) == 2
    assert record.current.ido == {x}
    assert len(x.dom) == 2
    machine.check_invariants()


def test_guess_many_merges_tags_into_one_interval(machine):
    machine.create_process("p")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    interval = machine.guess_many("p", [x, y])
    assert interval is not None
    assert interval.ido == {x, y}
    assert interval in x.dom and interval in y.dom
    assert interval.aid is None


def test_guess_many_skips_existing_dependencies(machine):
    machine.create_process("p")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    interval = machine.guess_many("p", [x, y])
    assert interval.ido == {x, y}
    # full Lemma 5.1 symmetry: the inherited dependency registers too
    assert interval in x.dom
    assert interval in y.dom


def test_guess_many_with_no_new_tags_returns_none(machine):
    machine.create_process("p")
    x = machine.aid_init("x")
    machine.guess("p", x)
    before = machine.process("p").current
    assert machine.guess_many("p", [x]) is None
    assert machine.process("p").current is before


def test_history_records_guess(machine):
    machine.create_process("p")
    x = machine.aid_init("x")
    machine.guess("p", x)
    kinds = [e.kind for e in machine.process("p").history]
    assert kinds == ["init", "guess"]
