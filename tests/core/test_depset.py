"""Interned dependency sets (:mod:`repro.core.depset`).

Unit tests for the hash-consing layer plus the machine-level properties
the interning must preserve: Lemma 5.1 symmetry and Theorem 5.2 under
randomized guess/affirm/deny/rollback schedules, with every IDO now an
interned immutable :class:`DepSet`.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (
    AidStatus,
    DepSet,
    DepSetInterner,
    IntervalState,
    Machine,
    ResolutionConflictError,
)
from repro.core.aid import AssumptionId


def _aids(n):
    return [AssumptionId(f"a{i}") for i in range(n)]


def _machine(procs=("p0", "p1", "p2")):
    machine = Machine(strict=False)
    for name in procs:
        machine.create_process(name)
    return machine


# ----------------------------------------------------------------------
# interner unit tests
# ----------------------------------------------------------------------
class TestInterning:
    def test_same_members_same_object(self):
        interner = DepSetInterner()
        a, b, c = _aids(3)
        s1 = interner.intern({a, b, c})
        s2 = interner.intern([c, b, a])
        assert s1 is s2

    def test_empty_is_singleton(self):
        interner = DepSetInterner()
        assert interner.intern(()) is interner.empty
        assert not interner.empty
        assert len(interner.empty) == 0

    def test_add_and_discard_round_trip(self):
        interner = DepSetInterner()
        a, b = _aids(2)
        s = interner.add(interner.empty, a)
        s = interner.add(s, b)
        assert set(s) == {a, b}
        back = interner.discard(interner.discard(s, b), a)
        assert back is interner.empty

    def test_add_existing_member_returns_same_set(self):
        interner = DepSetInterner()
        a, b = _aids(2)
        s = interner.intern({a, b})
        assert interner.add(s, a) is s

    def test_discard_absent_member_returns_same_set(self):
        interner = DepSetInterner()
        a, b = _aids(2)
        s = interner.intern({a})
        assert interner.discard(s, b) is s

    def test_union_interned(self):
        interner = DepSetInterner()
        a, b, c = _aids(3)
        left = interner.intern({a, b})
        right = interner.intern({b, c})
        u = interner.union(left, right)
        assert u is interner.intern({a, b, c})
        # memoized: same inputs give the same object without a rebuild
        assert interner.union(left, right) is u

    def test_extend_folds_adds(self):
        interner = DepSetInterner()
        a, b, c = _aids(3)
        s = interner.extend(interner.empty, [a, b, c])
        assert s is interner.intern({a, b, c})
        assert interner.extend(s, []) is s

    def test_operation_memo_hits_counted(self):
        stats = {"depset_hits": 0, "depset_misses": 0}
        interner = DepSetInterner(stats=stats)
        a, b = _aids(2)
        s = interner.intern({a})
        interner.add(s, b)
        before = stats["depset_hits"]
        interner.add(s, b)  # memoized op: no second construction
        assert stats["depset_hits"] > before


class TestDepSetSemantics:
    def test_set_protocol(self):
        interner = DepSetInterner()
        a, b = _aids(2)
        s = interner.intern({a, b})
        assert a in s and b in s
        assert len(s) == 2
        assert bool(s)
        assert set(iter(s)) == {a, b}

    def test_equality_with_plain_sets(self):
        interner = DepSetInterner()
        a, b = _aids(2)
        s = interner.intern({a, b})
        assert s == {a, b}
        assert s == frozenset({a, b})
        assert s != {a}

    def test_subset_operators(self):
        interner = DepSetInterner()
        a, b, c = _aids(3)
        small = interner.intern({a})
        big = interner.intern({a, b, c})
        assert small <= big and small < big
        assert big >= small and big > small
        assert not big <= small

    def test_set_algebra(self):
        interner = DepSetInterner()
        a, b, c = _aids(3)
        s1 = interner.intern({a, b})
        s2 = interner.intern({b, c})
        assert (s1 | s2) == {a, b, c}
        assert (s1 - s2) == {a}
        assert (s1 & s2) == {b}
        assert s1.isdisjoint(interner.intern(set()))
        assert not s1.isdisjoint(s2)

    def test_hashable_and_usable_as_dict_key(self):
        interner = DepSetInterner()
        a, b = _aids(2)
        s = interner.intern({a, b})
        d = {s: "value"}
        assert d[interner.intern({b, a})] == "value"

    def test_tag_keys_cached(self):
        interner = DepSetInterner()
        a, b = _aids(2)
        s = interner.intern({a, b})
        keys = s.tag_keys
        assert keys == frozenset({a.key, b.key})
        assert s.tag_keys is keys  # same frozenset object: computed once


# ----------------------------------------------------------------------
# machine integration
# ----------------------------------------------------------------------
class TestMachineUsesInternedSets:
    def test_interval_ido_is_interned(self):
        machine = _machine()
        x = machine.aid_init("x")
        machine.guess("p0", x)
        interval = machine.process("p0").current
        assert isinstance(interval.ido, DepSet)
        assert interval.ido is machine.depsets.intern({x})

    def test_nested_guesses_share_suffix_structure(self):
        machine = _machine()
        x, y = machine.aid_init("x"), machine.aid_init("y")
        machine.guess("p0", x)
        outer_ido = machine.process("p0").current.ido
        machine.guess("p0", y)
        inner_ido = machine.process("p0").current.ido
        # Theorem 5.1 chain, now at interned-object level:
        assert outer_ido < inner_ido
        assert machine.depsets.add(outer_ido, y) is inner_ido

    def test_dependencies_of_returns_interned_set_without_copy(self):
        machine = _machine()
        x = machine.aid_init("x")
        machine.guess("p0", x)
        first = machine.dependencies_of("p0")
        assert first is machine.dependencies_of("p0")
        assert first is machine.process("p0").current.ido

    def test_dependencies_of_definite_process_is_empty_singleton(self):
        machine = _machine()
        assert machine.dependencies_of("p0") is machine.depsets.empty

    def test_stats_expose_interner_counters(self):
        machine = _machine()
        x = machine.aid_init("x")
        machine.guess("p0", x)
        machine.guess("p1", x)   # same {x} IDO: an interner hit
        assert machine.stats["depset_hits"] >= 1
        assert machine.stats["depset_misses"] >= 1


# ----------------------------------------------------------------------
# property tests under random schedules (ISSUE: Lemma 5.1 / Theorem 5.2)
# ----------------------------------------------------------------------
PROCS = ["p0", "p1", "p2"]

ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["guess", "affirm", "deny", "recv", "rollback_via_deny"]),
        st.integers(min_value=0, max_value=len(PROCS) - 1),
        st.integers(min_value=0, max_value=4),
    ),
    min_size=1,
    max_size=50,
)


def _apply(machine, op, pid, aid):
    try:
        if op == "guess":
            machine.guess(pid, aid)
        elif op == "affirm":
            machine.affirm(pid, aid)
        elif op in ("deny", "rollback_via_deny"):
            # deny IS the rollback trigger: every process whose current
            # speculation depends on the aid rolls back (Eq 13).
            machine.deny(pid, aid)
        elif op == "recv":
            live, deps = machine.resolve_tags([aid])
            if live:
                machine.guess_many(pid, deps)
    except ResolutionConflictError:
        pass


@settings(max_examples=200, deadline=None)
@given(ACTIONS)
def test_lemma_5_1_symmetry_with_interned_sets(actions):
    """X in A.IDO  <=>  A in X.DOM, for every live interval, at every step."""
    machine = _machine()
    aids = [machine.aid_init(f"a{i}") for i in range(5)]
    for op, pidx, aidx in actions:
        _apply(machine, op, PROCS[pidx], aids[aidx])
        for record in machine.processes.values():
            for interval in record.intervals:
                if interval.state is not IntervalState.SPECULATIVE:
                    continue
                for aid in interval.ido:
                    assert interval in aid.dom, (
                        f"{interval} depends on {aid} but is not in its DOM"
                    )
        for aid in aids:
            for interval in aid.dom:
                assert aid in interval.ido, (
                    f"{interval} is in DOM({aid}) without depending on it"
                )


@settings(max_examples=200, deadline=None)
@given(ACTIONS)
def test_theorem_5_2_empty_ido_never_rolls_back(actions):
    """An interval observed with empty IDO can never roll back later."""
    machine = _machine()
    aids = [machine.aid_init(f"a{i}") for i in range(5)]
    immune = set()
    for op, pidx, aidx in actions:
        _apply(machine, op, PROCS[pidx], aids[aidx])
        machine.check_invariants()
        for record in machine.processes.values():
            for interval in record.intervals:
                if not interval.rolled_back and not interval.ido:
                    immune.add(interval)
    for interval in immune:
        assert interval.state is not IntervalState.ROLLED_BACK


@settings(max_examples=150, deadline=None)
@given(ACTIONS)
def test_interning_matches_plain_set_model(actions):
    """The interned IDO always equals the set a naive model would hold."""
    machine = _machine()
    aids = [machine.aid_init(f"a{i}") for i in range(5)]
    for op, pidx, aidx in actions:
        _apply(machine, op, PROCS[pidx], aids[aidx])
        for record in machine.processes.values():
            for interval in record.intervals:
                if interval.state is IntervalState.SPECULATIVE:
                    # identity-level: re-interning the members is a no-op
                    assert machine.depsets.intern(set(interval.ido)) is interval.ido
