"""Tests for free_of (Eq 17-19) and Theorem 6.3."""

import pytest

from repro.core import AidStatus, Machine, ResolutionConflictError


@pytest.fixture
def machine():
    return Machine(strict=True)


def test_free_of_in_definite_state_is_definite_affirm(machine):
    """Eq 17."""
    machine.create_process("p")
    machine.create_process("dependent")
    x = machine.aid_init("x")
    machine.guess("dependent", x)
    machine.free_of("p", x)
    assert x.status is AidStatus.AFFIRMED
    assert machine.process("dependent").current is None


def test_free_of_not_dependent_is_speculative_affirm(machine):
    """Eq 18."""
    machine.create_process("p")
    machine.create_process("dependent")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("dependent", x)
    dep_iv = machine.process("dependent").current
    machine.guess("p", y)                       # p speculative, not on x
    machine.free_of("p", x)
    assert x.status is AidStatus.PENDING        # speculative affirm
    assert dep_iv.ido == {y}                    # re-pointed at p's deps
    machine.check_invariants()


def test_free_of_when_dependent_denies_and_rolls_back(machine):
    """Eq 19 + Theorem 6.3: violation ⇒ deny(X) ⇒ self-rollback."""
    machine.create_process("p")
    x = machine.aid_init("x")
    machine.guess_many("p", [x])                # p got a tagged message
    machine.free_of("p", x)                     # ordering constraint violated
    assert x.status is AidStatus.DENIED
    record = machine.process("p")
    assert record.rollback_count == 1
    assert record.current is None
    machine.check_invariants()


def test_free_of_violation_rolls_back_all_dependents(machine):
    machine.create_process("p")
    machine.create_process("other")
    x = machine.aid_init("x")
    machine.guess("other", x)
    machine.guess_many("p", [x])
    machine.free_of("p", x)
    assert machine.process("other").rollback_count == 1
    machine.check_invariants()


def test_theorem_6_3_never_becomes_dependent_after_free_of(machine):
    """Theorem 6.3: after a successful free_of(X), the asserting interval
    never becomes dependent on X — even via a stale in-flight message tag.

    A message tagged {x} delivered after p's free_of(x) (a speculative
    affirm) resolves through ``resolve_tags`` to the affirmer's own
    dependencies, so x itself never re-enters p's IDO.
    """
    machine.create_process("p")
    machine.create_process("dependent")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("dependent", x)
    machine.guess("p", y)
    machine.free_of("p", x)                     # speculative affirm path
    # a stale tagged message arrives carrying x
    live, deps = machine.resolve_tags([x])
    assert live
    assert deps == {y}                          # x replaced by p's deps
    machine.guess_many("p", deps)
    assert x not in machine.process("p").current.ido
    machine.check_invariants()


def test_resolve_tags_affirmed_and_denied(machine):
    machine.create_process("q")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.affirm("q", x)
    live, deps = machine.resolve_tags([x, y])
    assert live and deps == {y}
    machine.deny("q", y)
    live, deps = machine.resolve_tags([x, y])
    assert not live


def test_free_of_on_denied_aid_lenient_noop():
    machine = Machine(strict=False)
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.deny("q", x)
    machine.free_of("p", x)                     # re-execution path: no-op
    assert x.status is AidStatus.DENIED


def test_free_of_on_affirmed_aid_lenient_noop():
    machine = Machine(strict=False)
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.affirm("q", x)
    machine.free_of("p", x)
    assert x.status is AidStatus.AFFIRMED


def test_free_of_on_resolved_aid_strict_raises(machine):
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.affirm("q", x)
    with pytest.raises(ResolutionConflictError):
        machine.free_of("p", x)


def test_free_of_consumes_aid_second_use_strict_raises(machine):
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.free_of("p", x)                     # definite affirm
    with pytest.raises(ResolutionConflictError):
        machine.free_of("q", x)
