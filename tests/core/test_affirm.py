"""Tests for affirm (Eq 7-14) and finalize (Eq 20-23)."""

import pytest

from repro.core import (
    AidStatus,
    FinalizePreconditionError,
    IntervalState,
    Machine,
    ResolutionConflictError,
)


@pytest.fixture
def machine():
    return Machine(strict=True)


def test_definite_affirm_finalizes_sole_dependent(machine):
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.guess("p", x)
    interval = machine.process("p").current
    machine.affirm("q", x)                      # q is definite ⇒ Eq 7-9
    assert x.status is AidStatus.AFFIRMED
    assert x.resolved_by == "q"
    assert interval.state is IntervalState.DEFINITE
    assert machine.process("p").current is None  # Eq 23
    assert machine.process("p").speculative == set()
    assert x.dom == set()
    machine.check_invariants()


def test_definite_affirm_finalizes_all_dependents_across_processes(machine):
    machine.create_process("a")
    machine.create_process("b")
    machine.create_process("judge")
    x = machine.aid_init("x")
    machine.guess("a", x)
    machine.guess("b", x)
    machine.affirm("judge", x)
    assert machine.process("a").current is None
    assert machine.process("b").current is None
    machine.check_invariants()


def test_definite_affirm_leaves_other_dependencies_pending(machine):
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    machine.guess("p", y)
    machine.affirm("q", x)
    record = machine.process("p")
    # The first interval (only x) finalizes; the second still needs y.
    assert len(record.speculative) == 1
    assert record.current is not None
    assert record.current.ido == {y}
    machine.check_invariants()


def test_affirm_chain_finalizes_nested_intervals_in_order(machine):
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    machine.guess("p", y)
    machine.affirm("q", y)
    # outer interval still depends on x; inner now only on x too
    record = machine.process("p")
    assert len(record.speculative) == 2
    machine.affirm("q", x)
    assert record.current is None
    assert record.speculative == set()
    machine.check_invariants()


def test_speculative_affirm_merges_ido_into_dependents(machine):
    """Eq 10-14: dependents of X inherit the affirmer's dependencies."""
    machine.create_process("worker")
    machine.create_process("wart")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("worker", x)                  # worker depends on x
    worker_iv = machine.process("worker").current
    machine.guess("wart", y)                    # wart depends on y
    machine.affirm("wart", x)                   # speculative affirm
    assert x.status is AidStatus.PENDING        # not definite yet
    assert worker_iv.ido == {y}                 # x replaced by wart's deps
    assert worker_iv in y.dom                   # Eq 10 symmetry
    assert x.dom == set()                       # Eq 14
    machine.check_invariants()


def test_speculative_affirm_made_definite_finalizes_dependents(machine):
    """Lemma 6.1: spec affirm + affirmer finalize ≡ definite affirm."""
    machine.create_process("worker")
    machine.create_process("wart")
    machine.create_process("judge")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("worker", x)
    machine.guess("wart", y)
    machine.affirm("wart", x)                   # speculative
    machine.affirm("judge", y)                  # definite ⇒ wart definite ⇒ x's old dependents free
    assert machine.process("worker").current is None
    assert machine.process("wart").current is None
    machine.check_invariants()


def test_self_affirm_finalizes_self(machine):
    """§5.2 self-affirm: X.DOM = {A} and A affirms X."""
    machine.create_process("p")
    x = machine.aid_init("x")
    machine.guess("p", x)
    machine.affirm("p", x)
    record = machine.process("p")
    assert record.current is None
    assert record.speculative == set()
    machine.check_invariants()


def test_self_affirm_with_other_dependencies_sheds_only_x(machine):
    machine.create_process("p")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", y)
    machine.guess("p", x)
    machine.affirm("p", x)
    record = machine.process("p")
    assert record.current is not None
    assert record.current.ido == {y}
    machine.check_invariants()


def test_second_affirm_strict_raises(machine):
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.affirm("q", x)
    with pytest.raises(ResolutionConflictError):
        machine.affirm("p", x)


def test_second_affirm_lenient_is_noop():
    machine = Machine(strict=False)
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.affirm("q", x)
    machine.affirm("p", x)                      # redundant ⇒ no-op
    assert x.status is AidStatus.AFFIRMED
    assert x.resolved_by == "q"


def test_affirm_conflicting_with_deny_raises_even_lenient():
    machine = Machine(strict=False)
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.deny("q", x)
    with pytest.raises(ResolutionConflictError):
        machine.affirm("p", x)


def test_affirm_while_speculative_affirm_live_raises(machine):
    machine.create_process("a")
    machine.create_process("b")
    machine.create_process("c")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("a", x)
    machine.guess("b", y)
    machine.affirm("b", x)                      # speculative, still live
    with pytest.raises(ResolutionConflictError):
        machine.affirm("c", x)


def test_finalize_precondition_guard(machine):
    machine.create_process("p")
    x = machine.aid_init("x")
    machine.guess("p", x)
    interval = machine.process("p").current
    with pytest.raises(FinalizePreconditionError):
        machine._finalize(interval)
