"""Memoized tag resolution: epoch-based invalidation regression tests.

``Machine.resolve_tags`` caches results per distinct tag set; the cache
MUST be flushed by every state change that can alter what a tag means at
delivery time (affirm, deny, finalize, rollback), or stale resolutions
would break the Theorem 6.3 delivery-side merge.  Each test constructs a
tag set whose meaning actually changes and asserts the post-change
resolution differs — i.e. it would fail if the cache survived the event.
"""

from repro.core import Machine


def _machine(procs=("p", "q")):
    machine = Machine(strict=False)
    for name in procs:
        machine.create_process(name)
    return machine


class TestEpochBumps:
    def test_affirm_bumps_epoch_and_flushes(self):
        machine = _machine()
        x = machine.aid_init("x")
        machine.guess("p", x)
        live, deps = machine.resolve_tags([x])
        assert live and deps == {x}
        epoch = machine.resolution_epoch
        machine.affirm("q", x)
        assert machine.resolution_epoch > epoch
        live, deps = machine.resolve_tags([x])
        assert live and deps == frozenset()  # affirmed tag imposes nothing

    def test_deny_bumps_epoch_and_flushes(self):
        machine = _machine()
        x = machine.aid_init("x")
        machine.guess("p", x)
        live, _ = machine.resolve_tags([x])
        assert live
        epoch = machine.resolution_epoch
        machine.deny("q", x)
        assert machine.resolution_epoch > epoch
        live, _ = machine.resolve_tags([x])
        assert not live  # denied tag now marks the message dead

    def test_rollback_bumps_epoch_and_flushes(self):
        """A rollback releases a speculative affirmer, changing what its
        AID's tag resolves to: affirmer's deps before, itself after."""
        machine = _machine()
        x, y = machine.aid_init("x"), machine.aid_init("y")
        machine.guess("p", x)
        machine.guess("p", y)
        machine.affirm("p", y)   # speculative affirm: y maps to {x} now
        live, deps = machine.resolve_tags([y])
        assert live and deps == {x}
        epoch = machine.resolution_epoch
        machine.deny("q", x)     # rolls p back; the affirm of y is undone
        assert machine.resolution_epoch > epoch
        assert y.pending
        live, deps = machine.resolve_tags([y])
        assert live and deps == {y}  # y stands for itself again

    def test_guess_does_not_bump_epoch(self):
        """Pending, unaffirmed tags resolve to themselves no matter how
        many intervals depend on them — guessing keeps the cache warm."""
        machine = _machine()
        x = machine.aid_init("x")
        machine.resolve_tags([x])
        epoch = machine.resolution_epoch
        machine.guess("p", x)
        machine.guess("q", x)
        assert machine.resolution_epoch == epoch

    def test_finalize_bumps_epoch(self):
        """free_of completing an interval finalizes it; parked speculative
        state becomes definite, so the caches flush."""
        machine = _machine()
        x = machine.aid_init("x")
        machine.guess("p", x)
        epoch = machine.resolution_epoch
        machine.affirm("q", x)   # resolves x and finalizes p's interval
        assert machine.resolution_epoch > epoch


class TestCacheBehaviour:
    def test_repeat_resolution_hits_cache(self):
        machine = _machine()
        x, y = machine.aid_init("x"), machine.aid_init("y")
        machine.guess("p", x)
        machine.guess("p", y)
        machine.resolve_tags([x, y])
        misses = machine.stats["resolve_cache_misses"]
        hits = machine.stats["resolve_cache_hits"]
        for _ in range(5):
            machine.resolve_tags([x, y])
        assert machine.stats["resolve_cache_hits"] == hits + 5
        assert machine.stats["resolve_cache_misses"] == misses

    def test_key_cache_agrees_with_aid_cache(self):
        machine = _machine()
        x, y = machine.aid_init("x"), machine.aid_init("y")
        machine.guess("p", x)
        machine.guess("p", y)
        by_aid = machine.resolve_tags([x, y])
        by_key = machine.resolve_tag_keys(frozenset({x.key, y.key}))
        assert by_aid == by_key
        # and the key-level cache serves repeats without AID lookups
        hits = machine.stats["resolve_cache_hits"]
        machine.resolve_tag_keys(frozenset({x.key, y.key}))
        assert machine.stats["resolve_cache_hits"] == hits + 1

    def test_cached_result_is_correct_across_distinct_tagsets(self):
        machine = _machine()
        x, y = machine.aid_init("x"), machine.aid_init("y")
        machine.guess("p", x)
        assert machine.resolve_tags([x]) == (True, frozenset({x}))
        assert machine.resolve_tags([y]) == (True, frozenset({y}))
        assert machine.resolve_tags([x, y]) == (True, frozenset({x, y}))
