"""Tests for the dependency-graph and dump tooling."""

import networkx as nx

from repro.core import Machine
from repro.core.inspect import (
    dependency_graph,
    format_machine,
    rollback_blast_radius,
    to_dot,
    transitive_dependencies,
)


def make_machine():
    machine = Machine(strict=False)
    for name in ("p", "q", "r"):
        machine.create_process(name)
    return machine


def test_dependency_graph_nodes_and_edges():
    machine = make_machine()
    x = machine.aid_init("x")
    machine.guess("p", x)
    machine.guess_many("q", [x])
    graph = dependency_graph(machine)
    aid_nodes = [n for n, d in graph.nodes(data=True) if d["kind"] == "aid"]
    interval_nodes = [n for n, d in graph.nodes(data=True) if d["kind"] == "interval"]
    assert len(aid_nodes) == 1
    assert len(interval_nodes) == 2
    assert all(
        d["relation"] == "depends_on" for _s, _t, d in graph.edges(data=True)
    )


def test_dead_intervals_excluded_by_default():
    machine = make_machine()
    x = machine.aid_init("x")
    machine.guess("p", x)
    machine.deny("q", x)
    assert len(dependency_graph(machine).nodes) == 1        # just the AID
    assert len(dependency_graph(machine, include_dead=True).nodes) == 2


def test_speculative_affirmer_edge():
    machine = make_machine()
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    machine.guess("q", y)
    machine.affirm("q", x)
    graph = dependency_graph(machine)
    relations = {d["relation"] for _s, _t, d in graph.edges(data=True)}
    assert "affirmed_by" in relations


def test_transitive_dependencies_follow_affirmers():
    machine = make_machine()
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    z = machine.aid_init("z")
    machine.guess("p", x)
    machine.guess("q", y)
    machine.affirm("q", x)      # x rides on y (via Eq 12 merge, p now on y)
    machine.guess("r", z)
    deps_p = transitive_dependencies(machine, "p")
    assert y.key in deps_p
    assert z.key not in deps_p
    assert transitive_dependencies(machine, "q") == frozenset({y.key})


def test_transitive_dependencies_of_definite_process_empty():
    machine = make_machine()
    assert transitive_dependencies(machine, "p") == frozenset()


def test_rollback_blast_radius():
    machine = make_machine()
    x = machine.aid_init("x")
    machine.guess("p", x)
    machine.guess_many("q", [x])
    assert rollback_blast_radius(machine, x) == frozenset({"p", "q"})
    machine.affirm("r", x)
    assert rollback_blast_radius(machine, x) == frozenset()


def test_format_machine_mentions_everything():
    machine = make_machine()
    x = machine.aid_init("x")
    machine.guess("p", x)
    text = format_machine(machine)
    assert "process p" in text
    assert x.key in text
    assert "IDO" in text
    with_history = format_machine(machine, include_history=True)
    assert "guess" in with_history


def test_to_dot_is_valid_looking_graphviz():
    machine = make_machine()
    x = machine.aid_init("x")
    machine.guess("p", x)
    dot = to_dot(machine)
    assert dot.startswith("digraph hope {")
    assert dot.rstrip().endswith("}")
    assert "depends_on" not in dot          # relations become styles
    assert "solid" in dot
    assert x.key in dot


def test_parked_deny_edge_rendered():
    """A speculative deny parks in IHD (Eq 16) and shows as parked_deny."""
    machine = make_machine()
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)       # p speculative on x
    machine.deny("p", y)        # speculative deny: y parked in p's IHD
    graph = dependency_graph(machine)
    relations = {
        (src, dst): d["relation"] for src, dst, d in graph.edges(data=True)
    }
    interval = machine.process("p").current
    assert relations[(f"interval:{interval.label}", f"aid:{y.key}")] == "parked_deny"
    # the dot rendering maps the relation to its dotted style
    assert "dotted" in to_dot(machine)


def test_include_dead_shows_rolled_back_intervals():
    machine = make_machine()
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("q", y)
    machine.guess("p", x)
    machine.affirm("q", x)      # speculative affirm: x now rides on y
    p_interval = machine.process("p").current
    q_interval = machine.process("q").current
    machine.deny("r", y)        # kills q's interval (and p's, via the merge)
    # the rollback also revoked the speculative affirm: x is pending
    # again and no affirmed_by edge survives, dead view included
    assert x.speculative_affirmer is None
    live = dependency_graph(machine)
    assert [n for n, d in live.nodes(data=True) if d["kind"] == "interval"] == []
    dead = dependency_graph(machine, include_dead=True)
    for interval in (p_interval, q_interval):
        node = f"interval:{interval.label}"
        assert dead.nodes[node]["state"] == "rolled_back"
        # dead intervals keep their recorded IDO edges
        assert (node, f"aid:{y.key}") in dead.edges
    assert all(
        d["relation"] != "affirmed_by" for _s, _t, d in dead.edges(data=True)
    )


def test_to_dot_status_colors():
    machine = make_machine()
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    z = machine.aid_init("z")
    machine.guess("p", x)       # x pending
    machine.affirm("q", y)      # y affirmed (definite)
    machine.deny("q", z)        # z denied (definite)
    dot = to_dot(machine)
    lines = {line for line in dot.splitlines()}
    assert any(x.key in l and "color=gray" in l for l in lines)
    assert any(y.key in l and "color=green" in l for l in lines)
    assert any(z.key in l and "color=red" in l for l in lines)
    # intervals are boxes, AIDs ellipses
    assert any("shape=box" in l for l in lines)
    assert any("shape=ellipse" in l for l in lines)


def test_blast_radius_spreads_through_implicit_guesses():
    """A tagged receive (guess_many) pulls the receiver into DOM, so the
    blast radius must include it — the cross-process cascade the span
    tree renders."""
    machine = make_machine()
    x = machine.aid_init("x")
    machine.guess("p", x)
    # q receives a message tagged {x}: implicit guess
    interval = machine.guess_many("q", [x])
    assert interval is not None and interval.aid is None
    # r receives a message from q, tagged with q's dependencies
    machine.guess_many("r", [x])
    assert rollback_blast_radius(machine, x) == frozenset({"p", "q", "r"})
    machine.deny("p", x)
    assert rollback_blast_radius(machine, x) == frozenset()


def test_guess_many_with_no_new_deps_creates_no_interval():
    machine = make_machine()
    x = machine.aid_init("x")
    machine.guess("p", x)
    before = machine.process("p").current
    assert machine.guess_many("p", [x]) is None
    assert machine.process("p").current is before


def test_graph_is_acyclic_for_plain_guesses():
    machine = make_machine()
    aids = [machine.aid_init(f"a{i}") for i in range(3)]
    for aid in aids:
        machine.guess("p", aid)
        machine.guess("q", aid)
    graph = dependency_graph(machine)
    assert nx.is_directed_acyclic_graph(graph)
