"""Tests for the dependency-graph and dump tooling."""

import networkx as nx

from repro.core import Machine
from repro.core.inspect import (
    dependency_graph,
    format_machine,
    rollback_blast_radius,
    to_dot,
    transitive_dependencies,
)


def make_machine():
    machine = Machine(strict=False)
    for name in ("p", "q", "r"):
        machine.create_process(name)
    return machine


def test_dependency_graph_nodes_and_edges():
    machine = make_machine()
    x = machine.aid_init("x")
    machine.guess("p", x)
    machine.guess_many("q", [x])
    graph = dependency_graph(machine)
    aid_nodes = [n for n, d in graph.nodes(data=True) if d["kind"] == "aid"]
    interval_nodes = [n for n, d in graph.nodes(data=True) if d["kind"] == "interval"]
    assert len(aid_nodes) == 1
    assert len(interval_nodes) == 2
    assert all(
        d["relation"] == "depends_on" for _s, _t, d in graph.edges(data=True)
    )


def test_dead_intervals_excluded_by_default():
    machine = make_machine()
    x = machine.aid_init("x")
    machine.guess("p", x)
    machine.deny("q", x)
    assert len(dependency_graph(machine).nodes) == 1        # just the AID
    assert len(dependency_graph(machine, include_dead=True).nodes) == 2


def test_speculative_affirmer_edge():
    machine = make_machine()
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    machine.guess("q", y)
    machine.affirm("q", x)
    graph = dependency_graph(machine)
    relations = {d["relation"] for _s, _t, d in graph.edges(data=True)}
    assert "affirmed_by" in relations


def test_transitive_dependencies_follow_affirmers():
    machine = make_machine()
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    z = machine.aid_init("z")
    machine.guess("p", x)
    machine.guess("q", y)
    machine.affirm("q", x)      # x rides on y (via Eq 12 merge, p now on y)
    machine.guess("r", z)
    deps_p = transitive_dependencies(machine, "p")
    assert y.key in deps_p
    assert z.key not in deps_p
    assert transitive_dependencies(machine, "q") == frozenset({y.key})


def test_transitive_dependencies_of_definite_process_empty():
    machine = make_machine()
    assert transitive_dependencies(machine, "p") == frozenset()


def test_rollback_blast_radius():
    machine = make_machine()
    x = machine.aid_init("x")
    machine.guess("p", x)
    machine.guess_many("q", [x])
    assert rollback_blast_radius(machine, x) == frozenset({"p", "q"})
    machine.affirm("r", x)
    assert rollback_blast_radius(machine, x) == frozenset()


def test_format_machine_mentions_everything():
    machine = make_machine()
    x = machine.aid_init("x")
    machine.guess("p", x)
    text = format_machine(machine)
    assert "process p" in text
    assert x.key in text
    assert "IDO" in text
    with_history = format_machine(machine, include_history=True)
    assert "guess" in with_history


def test_to_dot_is_valid_looking_graphviz():
    machine = make_machine()
    x = machine.aid_init("x")
    machine.guess("p", x)
    dot = to_dot(machine)
    assert dot.startswith("digraph hope {")
    assert dot.rstrip().endswith("}")
    assert "depends_on" not in dot          # relations become styles
    assert "solid" in dot
    assert x.key in dot


def test_graph_is_acyclic_for_plain_guesses():
    machine = make_machine()
    aids = [machine.aid_init(f"a{i}") for i in range(3)]
    for aid in aids:
        machine.guess("p", aid)
        machine.guess("q", aid)
    graph = dependency_graph(machine)
    assert nx.is_directed_acyclic_graph(graph)
