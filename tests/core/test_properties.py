"""Property-based tests: machine invariants under random primitive sequences.

A hypothesis-driven interpreter issues random but *well-formed* HOPE
primitive sequences (each AID resolved at most once by a live path) and
checks after every step that the machine's invariants — Lemma 5.1
symmetry, the Theorem 5.1 subset chain, IS/I consistency — hold, and that
the headline theorems are respected at quiescence.
"""

from hypothesis import given, settings, strategies as st

from repro.core import AidStatus, IntervalState, Machine, ResolutionConflictError

PROCS = ["p0", "p1", "p2"]


def _machine():
    machine = Machine(strict=False)
    for name in PROCS:
        machine.create_process(name)
    return machine


# Each action is (opcode, process index, aid index) over a fixed pool.
ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["guess", "affirm", "deny", "free_of", "recv", "step"]),
        st.integers(min_value=0, max_value=len(PROCS) - 1),
        st.integers(min_value=0, max_value=4),
    ),
    min_size=1,
    max_size=40,
)


def _apply(machine, aids, op, pid, aid):
    """Apply one random action; resolution conflicts are legal outcomes."""
    try:
        if op == "guess":
            machine.guess(pid, aid)
        elif op == "affirm":
            machine.affirm(pid, aid)
        elif op == "deny":
            machine.deny(pid, aid)
        elif op == "free_of":
            machine.free_of(pid, aid)
        elif op == "recv":
            live, deps = machine.resolve_tags([aid])
            if live:
                machine.guess_many(pid, deps)
        elif op == "step":
            machine.step(pid, "work")
    except ResolutionConflictError:
        pass


@settings(max_examples=200, deadline=None)
@given(ACTIONS)
def test_invariants_hold_under_random_schedules(actions):
    machine = _machine()
    aids = [machine.aid_init(f"a{i}") for i in range(5)]
    for op, pidx, aidx in actions:
        _apply(machine, aids, op, PROCS[pidx], aids[aidx])
        machine.check_invariants()


@settings(max_examples=200, deadline=None)
@given(ACTIONS)
def test_definite_intervals_stay_definite(actions):
    """Theorem 5.2: once finalized, an interval is never rolled back."""
    machine = _machine()
    aids = [machine.aid_init(f"a{i}") for i in range(5)]
    finalized = set()
    for op, pidx, aidx in actions:
        _apply(machine, aids, op, PROCS[pidx], aids[aidx])
        for record in machine.processes.values():
            for interval in record.intervals:
                if interval.state is IntervalState.DEFINITE:
                    finalized.add(interval)
    for interval in finalized:
        assert interval.state is IntervalState.DEFINITE


@settings(max_examples=200, deadline=None)
@given(ACTIONS)
def test_resolved_aids_have_empty_dom_and_stable_status(actions):
    machine = _machine()
    aids = [machine.aid_init(f"a{i}") for i in range(5)]
    resolved: dict = {}
    for op, pidx, aidx in actions:
        _apply(machine, aids, op, PROCS[pidx], aids[aidx])
        for aid in aids:
            if aid.status is not AidStatus.PENDING:
                assert not aid.dom
                if aid in resolved:
                    assert resolved[aid] == aid.status
                else:
                    resolved[aid] = aid.status


@settings(max_examples=200, deadline=None)
@given(ACTIONS)
def test_history_indices_monotone_per_process(actions):
    """Rollback truncation must keep histories strictly ordered."""
    machine = _machine()
    aids = [machine.aid_init(f"a{i}") for i in range(5)]
    for op, pidx, aidx in actions:
        _apply(machine, aids, op, PROCS[pidx], aids[aidx])
        for record in machine.processes.values():
            indices = [e.index for e in record.history]
            assert indices == sorted(indices)
            assert len(set(indices)) == len(indices)


@settings(max_examples=150, deadline=None)
@given(ACTIONS, st.integers(min_value=0, max_value=4))
def test_theorem_6_2_finalize_iff_all_affirmed(actions, target_idx):
    """Theorem 6.2 (forward direction, observable form): an interval that
    is definite at quiescence had every AID it ever depended on either
    affirmed or replaced by affirmed ones — no definite interval may
    coexist with a *denied* AID it transitively depended on at the end."""
    machine = _machine()
    aids = [machine.aid_init(f"a{i}") for i in range(5)]
    for op, pidx, aidx in actions:
        _apply(machine, aids, op, PROCS[pidx], aids[aidx])
    for record in machine.processes.values():
        for interval in record.intervals:
            if interval.state is IntervalState.DEFINITE:
                assert not interval.ido
