"""Unit tests for histories, records, and entity plumbing."""

import pytest

from repro.core import (
    AidStatus,
    HistoryEntry,
    Interval,
    Machine,
    MachineInvariantError,
    ProcessRecord,
    UnknownAidError,
    UnknownProcessError,
)
from repro.core.history import ProcessRecord as _PR


def test_history_indices_never_reused_after_truncation():
    record = ProcessRecord("p")
    for label in ("a", "b", "c"):
        record.append("event", label=label)
    dropped = record.truncate_from(1)
    assert [e.detail["label"] for e in dropped] == ["b", "c"]
    record.append("event", label="d")
    indices = [e.index for e in record.history]
    assert indices == [0, 1]
    assert record.history[-1].detail["label"] == "d"


def test_truncate_from_zero_clears_everything():
    record = ProcessRecord("p")
    record.append("event", label="x")
    dropped = record.truncate_from(0)
    assert len(dropped) == 1
    assert record.history == []


def test_truncate_future_index_is_noop():
    record = ProcessRecord("p")
    record.append("event")
    assert record.truncate_from(10) == []
    assert len(record.history) == 1


def test_history_entry_repr():
    entry = HistoryEntry(3, "guess", None, True, {"aid": "x#1"})
    text = repr(entry)
    assert "H[3]" in text and "guess" in text and "x#1" in text


def test_live_intervals_from_and_chain():
    machine = Machine(strict=False)
    machine.create_process("p")
    machine.create_process("q")
    aids = [machine.aid_init(f"a{i}") for i in range(3)]
    for aid in aids:
        machine.guess("p", aid)
    record = machine.process("p")
    chain = record.speculative_chain()
    assert len(chain) == 3
    start = chain[1].start_index
    assert record.live_intervals_from(start) == chain[1:]
    machine.affirm("q", aids[0])
    assert len(record.speculative_chain()) == 2


def test_unknown_process_and_aid_errors():
    machine = Machine()
    with pytest.raises(UnknownProcessError):
        machine.process("ghost")
    with pytest.raises(UnknownAidError):
        machine.aid("ghost#1")


def test_create_process_idempotent():
    machine = Machine()
    first = machine.create_process("p")
    second = machine.create_process("p")
    assert first is second
    assert len(first.history) == 1          # only one init entry


def test_machine_step_records_events():
    machine = Machine()
    machine.create_process("p")
    machine.step("p", "compute", cost=4)
    entry = machine.process("p").history[-1]
    assert entry.kind == "event"
    assert entry.detail == {"label": "compute", "cost": 4}


def test_interval_labels_and_depends_on():
    machine = Machine(strict=False)
    machine.create_process("p")
    x = machine.aid_init("lock")
    machine.guess("p", x)
    interval = machine.process("p").current
    assert "lock" in interval.label
    assert interval.depends_on(x)
    assert "p/I" in interval.label


def test_aid_key_and_repr():
    machine = Machine()
    aid = machine.aid_init("my-assumption")
    assert aid.key == f"my-assumption#{aid.serial}"
    assert "pending" in repr(aid)
    assert aid.pending and not aid.affirmed and not aid.denied


def test_guess_many_empty_iterable_is_none():
    machine = Machine()
    machine.create_process("p")
    assert machine.guess_many("p", []) is None


def test_nonsuffix_truncation_rejected():
    record = ProcessRecord("p")
    record.append("event")
    record.append("event")
    # simulate corruption: a stale high-index entry before a low one
    record.history.sort(key=lambda e: -e.index)
    with pytest.raises(MachineInvariantError):
        record.truncate_from(1)
