"""Fossil collection at the machine level: frontier correctness.

Theorem 6.1 is the soundness argument — finalized intervals never roll
back, so everything strictly behind a process's oldest speculative
interval is committed and reclaimable.  These tests pin down the three
load-bearing properties: the frontier is computed correctly, collection
never crosses it, and collection changes no observable resolution
(``check_invariants`` and ``resolve_tags`` agree before and after).
"""

import pytest

from repro.core import (
    Machine,
    MachineInvariantError,
    ProcessRecord,
    UnknownAidError,
)


def _machine(procs=("p", "q")):
    machine = Machine(strict=False)
    for name in procs:
        machine.create_process(name)
    return machine


# ----------------------------------------------------------------- frontier
class TestFrontier:
    def test_definite_process_frontier_is_next_index(self):
        record = ProcessRecord("p")
        for _ in range(3):
            record.append("event")
        assert record.frontier_index() == 3

    def test_frontier_is_oldest_speculative_interval(self):
        machine = _machine()
        aids = [machine.aid_init(f"a{i}") for i in range(3)]
        for aid in aids:
            machine.guess("p", aid)
        record = machine.process("p")
        chain = record.speculative_chain()
        assert record.frontier_index() == chain[0].start_index
        # resolving the oldest guess advances the frontier
        machine.affirm("q", aids[0])
        assert record.frontier_index() == chain[1].start_index

    def test_fossilize_past_frontier_rejected(self):
        machine = _machine()
        x = machine.aid_init("x")
        machine.guess("p", x)
        record = machine.process("p")
        with pytest.raises(MachineInvariantError):
            record.fossilize_before(record.frontier_index() + 1)

    def test_fossilize_keeps_current_interval(self):
        machine = _machine()
        old = machine.aid_init("old")
        machine.guess("p", old)
        machine.affirm("q", old)
        young = machine.aid_init("young")
        machine.guess("p", young)            # current stays speculative
        record = machine.process("p")
        record.fossilize_before(record.frontier_index())
        assert record.current in record.intervals


# --------------------------------------------------------------- collection
class TestCollect:
    def _resolved_run(self):
        """p guesses then q affirms everything: all fossil, no frontier."""
        machine = _machine()
        aids = [machine.aid_init(f"a{i}") for i in range(8)]
        for aid in aids:
            machine.guess("p", aid)
            machine.step("p", "compute", cost=1)
        for aid in aids:
            machine.affirm("q", aid)
        return machine, aids

    def test_collect_drops_history_and_retires_aids(self):
        machine, aids = self._resolved_run()
        before = len(machine.process("p").history)
        stats = machine.fossil_collect()
        assert stats.reclaimed_anything
        assert stats.history_dropped > 0
        assert len(machine.process("p").history) < before
        assert stats.aids_retired == len(aids)
        for aid in aids:
            with pytest.raises(UnknownAidError):
                machine.aid(aid.key)
        machine.check_invariants()

    def test_retired_counters_preserve_totals(self):
        machine, aids = self._resolved_run()
        machine.fossil_collect()
        assert machine.stats["aids_retired_affirmed"] == len(aids)
        assert machine.stats["fossil_aids_retired"] == len(aids)
        assert machine.stats["fossil_collections"] == 1

    def test_pending_and_referenced_aids_survive(self):
        machine = _machine()
        done = machine.aid_init("done")
        machine.guess("p", done)
        machine.affirm("q", done)
        pending = machine.aid_init("pending")
        machine.guess("p", pending)          # keeps p speculative
        machine.fossil_collect()
        assert machine.aid(pending.key) is pending
        machine.check_invariants()

    def test_pinned_keys_block_retirement(self):
        machine, aids = self._resolved_run()
        pinned = aids[0]
        stats = machine.fossil_collect(pinned_keys=frozenset({pinned.key}))
        assert stats.aids_retired == len(aids) - 1
        assert machine.aid(pinned.key) is pinned
        machine.check_invariants()

    def test_retired_aid_still_usable_by_object(self):
        """By-object use survives retirement (Theorem 6.1: the answer is
        fixed); only by-key lookup is forfeited."""
        machine, aids = self._resolved_run()
        machine.fossil_collect()
        assert aids[0].affirmed
        # a fresh guess on a retained reference behaves as for any
        # affirmed AID: G=True with no new speculation
        assert machine.guess("q", aids[0]) is True
        assert not machine.process("q").speculative

    def test_collect_behind_frontier_is_partial(self):
        """Resolved prefix fossilizes while an open guess pins the rest."""
        machine = _machine()
        old = machine.aid_init("old")
        machine.guess("p", old)
        machine.affirm("q", old)
        young = machine.aid_init("young")
        machine.guess("p", young)
        machine.step("p", "compute", cost=1)
        record = machine.process("p")
        frontier = record.frontier_index()
        machine.fossil_collect()
        # everything at/after the frontier is untouched
        assert all(e.index >= frontier for e in record.history)
        assert record.frontier_index() == frontier
        machine.check_invariants()

    def test_orphaned_pending_aids_are_retired(self):
        """An AID minted inside a rolled-back interval is unreachable:
        its creation entry is gone from history, nothing retained
        references it, so no one can ever resolve it — garbage despite
        being PENDING."""
        machine = _machine()
        root = machine.aid_init("root")
        machine.guess("p", root)
        orphan = machine.aid_init("orphan")
        machine.guess("p", orphan)           # lives inside root's world
        machine.deny("q", root)              # rolls both intervals back
        assert orphan.pending
        stats = machine.fossil_collect()
        assert stats.aids_retired >= 1
        assert machine.stats["aids_retired_pending"] >= 1
        with pytest.raises(UnknownAidError):
            machine.aid(orphan.key)
        # pinning still protects an orphan someone can name
        machine.check_invariants()

    def test_pinned_orphan_survives(self):
        machine = _machine()
        root = machine.aid_init("root")
        machine.guess("p", root)
        orphan = machine.aid_init("orphan")
        machine.guess("p", orphan)
        machine.deny("q", root)
        machine.fossil_collect(pinned_keys=frozenset({orphan.key}))
        assert machine.aid(orphan.key) is orphan

    def test_collect_is_idempotent_when_nothing_new(self):
        machine, _ = self._resolved_run()
        machine.fossil_collect()
        second = machine.fossil_collect()
        assert not second.reclaimed_anything


# ----------------------------------------------------------- depsets/caches
class TestDepSetAndCachePurge:
    def test_depset_table_compacts_to_live_sets(self):
        machine, _ = self._run_and_resolve(12)
        table_before = len(machine.depsets)
        stats = machine.fossil_collect()
        assert stats.depsets_dropped > 0
        assert len(machine.depsets) < table_before
        # the empty set always survives (it is the definite state)
        assert machine.depsets.empty is machine.depsets.intern(frozenset())

    def test_resolve_cache_entries_for_retired_aids_purged(self):
        """Satellite: retirement must not leave memoized resolutions
        pinning a dead identifier."""
        machine, aids = self._run_and_resolve(4)
        # memoize post-resolution results that mention the doomed AIDs
        machine.resolve_tags([aids[0], aids[1]])
        machine.resolve_tag_keys(frozenset({aids[2].key}))
        assert machine._resolve_cache and machine._resolve_key_cache
        stats = machine.fossil_collect()
        assert stats.resolve_entries_purged >= 2
        retired = set(aids)
        for tagset in machine._resolve_cache:
            assert retired.isdisjoint(tagset)
        retired_keys = {a.key for a in aids}
        for keyset in machine._resolve_key_cache:
            assert retired_keys.isdisjoint(keyset)

    def test_resolution_identical_before_and_after_collect(self):
        machine = _machine()
        stay = machine.aid_init("stay")
        gone = machine.aid_init("gone")
        machine.guess("p", gone)
        machine.affirm("q", gone)
        machine.guess("p", stay)
        before = machine.resolve_tags([stay])
        machine.fossil_collect()
        assert machine.resolve_tags([stay]) == before
        machine.check_invariants()

    @staticmethod
    def _run_and_resolve(n):
        machine = _machine()
        aids = [machine.aid_init(f"a{i}") for i in range(n)]
        for aid in aids:
            machine.guess("p", aid)
        for aid in aids:
            machine.affirm("q", aid)
        return machine, aids
