"""Tests for deny (Eq 15-16) and rollback (Eq 24)."""

import pytest

from repro.core import (
    AidStatus,
    IntervalState,
    Machine,
    ResolutionConflictError,
    RollbackEvent,
)


@pytest.fixture
def machine():
    return Machine(strict=True)


def test_definite_deny_rolls_back_sole_dependent(machine):
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.guess("p", x)
    interval = machine.process("p").current
    machine.deny("q", x)
    assert x.status is AidStatus.DENIED
    assert interval.state is IntervalState.ROLLED_BACK
    record = machine.process("p")
    assert record.current is None
    assert record.g is False                    # Eq 24: resumes with False
    assert record.rollback_count == 1
    machine.check_invariants()


def test_rollback_truncates_history_to_guess_point(machine):
    """Theorem 5.1: deletion is a suffix starting at the interval head."""
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.step("p", "before")
    machine.guess("p", x)
    machine.step("p", "spec-work-1")
    machine.step("p", "spec-work-2")
    machine.deny("q", x)
    kinds = [e.kind for e in machine.process("p").history]
    assert kinds == ["init", "event", "resume"]
    labels = [e.detail.get("label") for e in machine.process("p").history]
    assert "spec-work-1" not in labels


def test_rollback_discards_all_later_intervals(machine):
    """Theorem 5.1: every interval after A rolls back with A."""
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    z = machine.aid_init("z")
    machine.guess("p", x)
    first = machine.process("p").current
    machine.guess("p", y)
    second = machine.process("p").current
    machine.guess("p", z)
    third = machine.process("p").current
    machine.deny("q", x)
    assert first.state is IntervalState.ROLLED_BACK
    assert second.state is IntervalState.ROLLED_BACK
    assert third.state is IntervalState.ROLLED_BACK
    assert machine.process("p").current is None
    # y and z must not retain dead intervals in their DOM
    assert y.dom == set() and z.dom == set()
    machine.check_invariants()


def test_rollback_of_inner_interval_keeps_outer(machine):
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    outer = machine.process("p").current
    machine.guess("p", y)
    machine.deny("q", y)
    record = machine.process("p")
    assert record.current is outer
    assert outer.state is IntervalState.SPECULATIVE
    assert record.g is False
    machine.check_invariants()


def test_deny_cascades_across_processes(machine):
    """§1: if pi rolls back, its message receivers pj roll back too."""
    machine.create_process("sender")
    machine.create_process("receiver")
    machine.create_process("judge")
    x = machine.aid_init("x")
    machine.guess("sender", x)
    # receiver got a message tagged {x}: implicit guess
    machine.guess_many("receiver", [x])
    machine.deny("judge", x)
    assert machine.process("sender").rollback_count == 1
    assert machine.process("receiver").rollback_count == 1
    machine.check_invariants()


def test_deny_of_own_dependency_is_definite_and_self_rolls_back(machine):
    """Eq 15 guard: X ∈ A.IDO makes the deny definite."""
    machine.create_process("p")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", y)
    machine.guess("p", x)
    machine.deny("p", x)                        # p depends on x ⇒ definite
    assert x.status is AidStatus.DENIED
    record = machine.process("p")
    assert record.rollback_count == 1
    assert record.current is not None           # back to the y interval
    assert record.current.ido == {y}
    machine.check_invariants()


def test_speculative_deny_parks_in_ihd(machine):
    machine.create_process("p")
    machine.create_process("victim")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("victim", x)
    machine.guess("p", y)                       # p speculative on y only
    machine.deny("p", x)                        # speculative deny (Eq 16)
    assert x.status is AidStatus.PENDING
    assert x in machine.process("p").current.ihd
    assert machine.process("victim").rollback_count == 0
    machine.check_invariants()


def test_speculative_deny_applies_at_finalize(machine):
    """Eq 22: finalize turns parked denies into definite denies."""
    machine.create_process("p")
    machine.create_process("victim")
    machine.create_process("judge")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("victim", x)
    machine.guess("p", y)
    machine.deny("p", x)                        # parked
    machine.affirm("judge", y)                  # p finalizes ⇒ deny(x) fires
    assert x.status is AidStatus.DENIED
    assert machine.process("victim").rollback_count == 1
    machine.check_invariants()


def test_speculative_deny_dies_with_rolled_back_interval(machine):
    """§5.6: speculative denies 'die with the interval inside the IHD set'."""
    machine.create_process("p")
    machine.create_process("victim")
    machine.create_process("judge")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("victim", x)
    machine.guess("p", y)
    machine.deny("p", x)                        # parked in p's interval
    machine.deny("judge", y)                    # p rolls back
    assert x.status is AidStatus.PENDING        # the deny never fired
    assert machine.process("victim").rollback_count == 0
    machine.check_invariants()


def test_rollback_of_speculative_affirm_releases_aid(machine):
    """Footnote 2: rollback of a speculative affirm ≡ deny for dependents,
    and the AID returns to PENDING for the re-execution to resolve."""
    machine.create_process("worker")
    machine.create_process("wart")
    machine.create_process("judge")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("worker", x)
    machine.guess("wart", y)
    machine.affirm("wart", x)                   # speculative affirm
    machine.deny("judge", y)                    # wart rolls back
    # worker inherited dependence on y (Eq 12) so it rolls back too
    assert machine.process("worker").rollback_count == 1
    assert machine.process("wart").rollback_count == 1
    assert x.status is AidStatus.PENDING
    assert x.speculative_affirmer is None
    machine.check_invariants()


def test_released_aid_can_be_resolved_again(machine):
    machine.create_process("worker")
    machine.create_process("wart")
    machine.create_process("judge")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("worker", x)
    machine.guess("wart", y)
    machine.affirm("wart", x)
    machine.deny("judge", y)
    # Re-execution: wart (now definite) re-affirms x.
    machine.affirm("wart", x)
    assert x.status is AidStatus.AFFIRMED
    machine.check_invariants()


def test_second_deny_strict_raises(machine):
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.deny("q", x)
    with pytest.raises(ResolutionConflictError):
        machine.deny("p", x)


def test_second_deny_lenient_noop():
    machine = Machine(strict=False)
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.deny("q", x)
    machine.deny("p", x)
    assert x.resolved_by == "q"


def test_rollback_event_reports_discarded_intervals(machine):
    seen = []
    machine.subscribe(lambda e: seen.append(e) if isinstance(e, RollbackEvent) else None)
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    machine.guess("p", y)
    machine.deny("q", x)
    assert len(seen) == 1
    event = seen[0]
    assert event.pid == "p"
    assert len(event.discarded) == 2
    assert event.cause is x


def test_theorem_5_2_definite_interval_never_rolls_back(machine):
    """Theorem 5.2: once IDO is empty the interval is safe forever."""
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    z = machine.aid_init("z")
    machine.guess("p", x)
    survivor = machine.process("p").current
    machine.affirm("q", x)                      # survivor finalized
    machine.guess("p", z)
    machine.deny("q", z)                        # rolls back only the z interval
    assert survivor.state is IntervalState.DEFINITE
    machine.check_invariants()
