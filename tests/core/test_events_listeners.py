"""Machine event emission: every primitive notifies subscribers correctly."""

import pytest

from repro.core import (
    AffirmEvent,
    DenyEvent,
    FinalizeEvent,
    GuessEvent,
    GuessSkippedEvent,
    Machine,
    RollbackEvent,
)


def machine_with(events):
    machine = Machine(strict=False)
    for name in ("p", "q"):
        machine.create_process(name)
    machine.subscribe(events.append)
    return machine


def test_guess_emits_guess_event():
    events = []
    machine = machine_with(events)
    x = machine.aid_init("x")
    machine.guess("p", x)
    [event] = [e for e in events if isinstance(e, GuessEvent)]
    assert event.pid == "p"
    assert event.interval.aid is x


def test_guess_on_resolved_emits_skip_event():
    events = []
    machine = machine_with(events)
    x = machine.aid_init("x")
    machine.affirm("q", x)
    machine.guess("p", x)
    [skip] = [e for e in events if isinstance(e, GuessSkippedEvent)]
    assert skip.value is True and skip.aid is x
    y = machine.aid_init("y")
    machine.deny("q", y)
    machine.guess("p", y)
    skips = [e for e in events if isinstance(e, GuessSkippedEvent)]
    assert skips[-1].value is False


def test_affirm_definite_flag_distinguishes_cases():
    events = []
    machine = machine_with(events)
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    machine.guess("q", y)
    machine.affirm("q", x)                    # q speculative ⇒ speculative
    spec = [e for e in events if isinstance(e, AffirmEvent)][-1]
    assert spec.definite is False
    machine.affirm("p", y)                    # hmm: p depends on x-replaced deps
    events.clear()
    z = machine.aid_init("z")
    machine.guess("p", z)
    machine.affirm("q", z)                    # q definite now ⇒ definite affirm
    last = [e for e in events if isinstance(e, AffirmEvent)][-1]
    assert last.definite is True


def test_deny_and_rollback_event_payloads():
    events = []
    machine = machine_with(events)
    x = machine.aid_init("x")
    machine.guess("p", x)
    machine.step("p", "work")
    machine.deny("q", x)
    [deny] = [e for e in events if isinstance(e, DenyEvent)]
    assert deny.definite is True
    [rollback] = [e for e in events if isinstance(e, RollbackEvent)]
    assert rollback.cause is x
    assert rollback.pid == "p"
    assert len(rollback.discarded) == 1


def test_finalize_event_fires_per_interval():
    events = []
    machine = machine_with(events)
    x = machine.aid_init("x")
    machine.guess("p", x)
    machine.guess("q", x)
    machine.affirm("q", x)                    # self-affirm resolves both
    finals = [e for e in events if isinstance(e, FinalizeEvent)]
    assert {e.pid for e in finals} == {"p", "q"}


def test_multiple_listeners_all_notified_in_order():
    first, second = [], []
    machine = Machine(strict=False)
    machine.create_process("p")
    order = []
    machine.subscribe(lambda e: (first.append(e), order.append("first")))
    machine.subscribe(lambda e: (second.append(e), order.append("second")))
    x = machine.aid_init("x")
    machine.guess("p", x)
    assert len(first) == len(second) == 1
    assert order == ["first", "second"]
