"""Differential oracle: the parallel backend against its sim twin.

The contract (docs/LIMITATIONS.md "Parallel-mode ordering"): for
branch-symmetric programs, the *committed-state fingerprint* — each
process's committed output multiset — of a parallel run equals the
deterministic simulator's, for every worker count.  Event interleavings
and trace streams are allowed to differ; committed state is not.
"""

import os

import pytest

from repro import AidStatus, HopeSystem, MetricsRegistry
from repro.bench.workloads import (
    build_chaos_mesh,
    build_chaos_ring,
    build_fanout,
    build_replication,
)
from repro.chaos import committed_state
from repro.core.errors import HopeError
from repro.sim.latency import ConstantLatency, UniformLatency

SEEDS = (0, 1, 7, 42)
WORKER_COUNTS = (1, 2, 4)

WORKLOADS = {
    "mesh": lambda s: build_chaos_mesh(s, workers=3, rounds=3),
    "ring": lambda s: build_chaos_ring(s, nodes=4, laps=2),
    "fanout": lambda s: build_fanout(s, pairs=3, rounds=3),
    "replication": lambda s: build_replication(s, replicas=3, updates=3),
}


def run_system(build, seed, backend="sim", workers=None, **kw):
    system = HopeSystem(
        seed=seed, latency=ConstantLatency(1.0), backend=backend,
        workers=workers, **kw,
    )
    build(system)
    system.run(max_events=200_000)
    return system


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("seed", SEEDS)
def test_fingerprints_match_sim_twin(workload, seed):
    build = WORKLOADS[workload]
    want = committed_state(run_system(build, seed))
    for workers in WORKER_COUNTS:
        got = committed_state(run_system(build, seed, "parallel", workers))
        assert got == want, (workload, seed, workers)


def test_results_and_outputs_cross_backend():
    sim = run_system(WORKLOADS["mesh"], 3)
    par = run_system(WORKLOADS["mesh"], 3, "parallel", 2)
    for name in sim.procs:
        assert par.is_done(name) == sim.is_done(name)
        if sim.is_done(name):
            assert par.result_of(name) == sim.result_of(name)
        assert sorted(map(repr, par.committed_outputs(name))) == sorted(
            map(repr, sim.committed_outputs(name))
        )


def test_parallel_stats_merge():
    par = run_system(WORKLOADS["fanout"], 1, "parallel", 2)
    stats = par.stats()
    assert stats["backend"] == "parallel"
    assert stats["workers"] == 2
    assert stats["windows"] > 0
    assert stats["crashed_workers"] == []
    # Cross-shard wire traffic happened and was acked symmetrically.
    wire = stats["wire"]
    assert wire["frames_out"] == wire["frames_in"] > 0
    # Every injected frame was acked; acks emitted in the final window
    # may never be granted (bookkeeping frames do not wake idle shards).
    assert wire["acks_out"] == wire["frames_in"]
    assert wire["acks_in"] <= wire["acks_out"]
    # Per-worker events sum to the aggregate count.
    assert sum(stats["per_worker_events"].values()) == stats["sim_events"]


def test_parallel_metrics_merge():
    sim = run_system(WORKLOADS["mesh"], 2, metrics=MetricsRegistry())
    par = run_system(WORKLOADS["mesh"], 2, "parallel", 2,
                     metrics=MetricsRegistry())
    sim_snap = sim.metrics_snapshot().snapshot()
    par_snap = par.metrics_snapshot().snapshot()
    # The committed work is the same, so the workload-determined counters
    # agree (timing-dependent ones — rollbacks, wasted time — may not).
    assert par_snap["hope_guesses_total"] >= sim_snap["hope_guesses_total"]
    assert par_snap["hope_sim_events"] > 0
    # Snapshotting again must not clobber the merged shard gauges.
    assert par.metrics_snapshot().snapshot()["hope_sim_events"] == (
        par_snap["hope_sim_events"]
    )


def test_aid_status_surfaces_merged_view():
    par = run_system(WORKLOADS["mesh"], 0, "parallel", 2)
    statuses = {par.aid_status(key) for key in par.backend._aid_statuses}
    assert statuses <= {AidStatus.AFFIRMED, AidStatus.DENIED}
    assert AidStatus.AFFIRMED in statuses
    assert AidStatus.DENIED in statuses


def test_worker_crash_mid_speculation_denies_dead_aids():
    """Fail-stop worker death: the coordinator (acting as the failure
    detector) issues definite denies for every assumption the dead shard
    minted and never resolved, so surviving dependents roll back instead
    of stranding speculative forever."""
    par = HopeSystem(
        seed=2, latency=ConstantLatency(1.0), backend="parallel", workers=2,
        parallel_opts={"crash_at": {1: 2.5}},
    )
    build_chaos_mesh(par, workers=3, rounds=4)
    par.run(max_events=200_000)
    stats = par.stats()
    assert stats["crashed_workers"] == [1]
    # Round-robin placement: validator,w1 -> worker 0; w0,w2 -> worker 1.
    dead = sorted(n for n, p in par.procs.items() if p.crashed)
    assert dead == ["w0", "w2"]
    assert not par.procs["w1"].crashed
    # Every pending AID owned by the dead shard is now denied; the dead
    # workers' keys carry worker 1's serial stride.
    dead_keys = [k for k in par.backend._aid_statuses
                 if k.startswith(("w0-", "w2-"))]
    assert dead_keys, "dead workers minted assumptions before the crash"
    assert all(par.aid_status(k) is not AidStatus.PENDING for k in dead_keys)
    assert any(par.aid_status(k) is AidStatus.DENIED for k in dead_keys)
    # Survivors keep only committed outputs — nothing speculative leaked.
    for name in ("validator", "w1"):
        for record in par.procs[name].outputs:
            assert record.committed


def test_rejects_unsupported_options():
    from repro.sim.faults import FaultPlan, LinkFaults

    with pytest.raises(HopeError, match="fault plans"):
        HopeSystem(backend="parallel", latency=ConstantLatency(1.0),
                   faults=FaultPlan(default=LinkFaults(drop=0.5)))
    with pytest.raises(HopeError, match="ConstantLatency"):
        HopeSystem(backend="parallel")  # zero-latency default: no lookahead
    with pytest.raises(HopeError, match="ConstantLatency"):
        from repro.sim.random import RandomStream

        HopeSystem(backend="parallel",
                   latency=UniformLatency(0.5, 1.5, RandomStream(0, "lat")))
    with pytest.raises(HopeError, match="aid_mode"):
        HopeSystem(backend="parallel", latency=ConstantLatency(1.0),
                   aid_mode="aid_task")
    with pytest.raises(HopeError, match="workers"):
        HopeSystem(backend="sim", workers=4)
    with pytest.raises(HopeError, match="unknown parallel_opts"):
        HopeSystem(backend="parallel", latency=ConstantLatency(1.0),
                   parallel_opts={"typo": 1})


def test_placement_override_keeps_fingerprint():
    build = WORKLOADS["fanout"]
    want = committed_state(run_system(build, 4))
    placement = {}
    for i in range(3):
        placement[f"fv{i}"] = i % 2
        placement[f"fw{i}"] = i % 2   # co-locate each pair
    par = HopeSystem(seed=4, latency=ConstantLatency(1.0),
                     backend="parallel", workers=2,
                     parallel_opts={"placement": placement})
    build(par)
    par.run(max_events=200_000)
    assert committed_state(par) == want
    # Co-located pairs exchange no message frames, only resolutions.
    assert par.stats()["wire"]["frames_out"] == 0


def test_spawn_after_run_rejected():
    par = run_system(WORKLOADS["mesh"], 0, "parallel", 2)
    with pytest.raises(HopeError, match="spawns must precede run"):
        par.spawn("late", lambda p: iter(()))


@pytest.mark.skipif(not hasattr(os, "fork"), reason="requires fork")
def test_sim_backend_untouched_by_extraction():
    """The Backend seam must not perturb the simulator: a sim system's
    trace-visible numbers are independent of the parallel module even
    being imported."""
    import repro.parallel  # noqa: F401 - import side effects only

    sim = run_system(WORKLOADS["ring"], 9)
    again = run_system(WORKLOADS["ring"], 9)
    assert sim.stats() == again.stats()
    assert committed_state(sim) == committed_state(again)
