"""Tests for the benchmark support package."""

import pytest

from repro.apps.call_streaming import expected_output, run_optimistic, run_pessimistic
from repro.bench import (
    find_crossover,
    format_table,
    mean,
    percentile,
    probabilistic_config,
    speedup,
    streaming_config,
    sweep,
    vt_workload,
)


def test_mean_and_percentile():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert percentile([5, 1, 9, 3], 0) == 1
    assert percentile([5, 1, 9, 3], 100) == 9
    with pytest.raises(ValueError):
        mean([])
    with pytest.raises(ValueError):
        percentile([1], 150)


def test_speedup():
    assert speedup(10.0, 5.0) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        speedup(0.0, 1.0)


def test_find_crossover_interpolates():
    xs = [0.0, 1.0, 2.0]
    a = [0.0, 2.0, 4.0]
    b = [3.0, 3.0, 3.0]
    cross = find_crossover(xs, a, b)
    assert cross == pytest.approx(1.5)


def test_find_crossover_none_when_dominated():
    assert find_crossover([0, 1], [1, 2], [5, 6]) is None


def test_sweep_collects_metrics():
    result = sweep("n", [1, 2, 3], lambda n: {"sq": n * n, "double": 2 * n})
    assert result.values == [1, 2, 3]
    assert result.column("sq") == [1, 4, 9]
    rows = result.rows(["sq", "double"])
    assert rows[2] == [3, 9, 6]
    assert result.headers(["sq"]) == ["n", "sq"]


def test_sweep_rejects_ragged_metrics():
    def run(n):
        return {"a": 1} if n == 0 else {"b": 2}

    with pytest.raises(ValueError):
        sweep("n", [0, 1], run)


def test_format_table_alignment():
    text = format_table("T", ["x", "metric"], [[1, 2.5], [10, 0.125]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "metric" in lines[2]
    assert len(lines) == 6


def test_streaming_config_defaults():
    config = streaming_config(n_reports=5)
    assert config.n_reports == 5
    assert config.n_warts == 5
    assert expected_output(config)  # never fills the page
    assert all(op[0] == "print" for op in expected_output(config))


@pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
def test_probabilistic_config_failure_fraction(p):
    config = probabilistic_config(n_reports=20, success_probability=p, seed=3)
    reference = expected_output(config)
    failures = sum(1 for op in reference if op[0] == "newpage")
    if p == 1.0:
        assert failures == 0
    elif p == 0.0:
        assert failures == 20
    else:
        assert 0 < failures < 20


def test_probabilistic_config_runs_equivalently():
    config = probabilistic_config(n_reports=6, success_probability=0.5, seed=1)
    pess = run_pessimistic(config)
    opt = run_optimistic(config)
    assert pess.server_output == expected_output(config)
    assert opt.server_output == expected_output(config)


def test_vt_workload_has_unique_ascending_streams():
    workload = vt_workload(n_senders=3, jobs_per_sender=4)
    vts = [job.vt for job in workload.all_jobs]
    assert vts == sorted(vts)
    assert len(set(vts)) == len(vts)
