"""Tests for the seeded chaos harness (repro.chaos)."""

import json

from repro.chaos import (
    WORKLOADS,
    committed_state,
    format_report,
    run_case,
    run_matrix,
    run_reproducer,
    shrink_plan,
    standard_plans,
)
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency, FaultPlan, LinkFaults, Tracer
from repro.bench.workloads import build_chaos_mesh


# ---------------------------------------------------------------- the matrix
def test_full_matrix_is_green_and_big_enough(tmp_path):
    """The PR's acceptance bar: >= 20 seed x fault-plan combos across the
    registered workloads, monitors attached, zero invariant violations,
    and every faulty run's committed state equal to its fault-free
    twin's."""
    report = run_matrix(seeds=(1, 2, 3), repro_dir=str(tmp_path))
    assert report["total"] >= 20
    assert report["failures"] == []
    assert report["passed"] == report["total"]
    assert report["determinism_checked"] > 0
    assert report["repro_files"] == []
    assert "cases passed" in format_report(report)


def test_case_fingerprint_reproduces_per_seed():
    workload = WORKLOADS["mesh"]
    plan = standard_plans("mesh")["storm"]
    first = run_case(workload, 2, plan)
    second = run_case(workload, 2, plan)
    other_seed = run_case(workload, 9, plan)
    assert first.ok and second.ok
    assert first.fingerprint == second.fingerprint
    assert first.fingerprint != other_seed.fingerprint


def test_faulty_committed_state_matches_twin_directly():
    workload = WORKLOADS["ring"]
    twin = run_case(workload, 4, None, plan_name="fault-free")
    faulty = run_case(
        workload, 4, standard_plans("ring")["drop-heavy"], twin=twin.committed
    )
    assert twin.ok and faulty.ok
    assert faulty.committed == twin.committed


def test_run_case_flags_divergence_from_twin():
    workload = WORKLOADS["mesh"]
    fake_twin = {"validator": ("something-else",)}
    result = run_case(workload, 1, None, twin=fake_twin)
    assert not result.ok
    assert "diverged" in result.failure


# ---------------------------------------------------------------- shrinking
def test_shrink_plan_zeroes_irrelevant_knobs():
    plan = FaultPlan(
        default=LinkFaults(drop=0.4, duplicate=0.3, jitter=2.0)
    )
    # a predicate that only cares about drop: everything else shrinks away
    minimal, runs = shrink_plan(plan, lambda p: p.default.drop >= 0.1)
    assert minimal.default.duplicate == 0.0
    assert minimal.default.jitter == 0.0
    assert minimal.default.drop >= 0.1
    assert 0 < runs <= 40


def test_failing_case_writes_shrunken_reproducer(tmp_path):
    """Force a failure (drop everything with retries off) and check the
    harness shrinks it and writes a runnable JSON reproducer."""
    plans = {"blackout": FaultPlan(default=LinkFaults(drop=1.0))}
    report = run_matrix(
        workloads=["mesh"],
        seeds=(1,),
        plans=plans,
        reliable=False,            # no retries: the drop is fatal
        repro_dir=str(tmp_path),
        verify_determinism=False,
        max_events=50_000,
    )
    assert len(report["failures"]) == 1
    assert len(report["repro_files"]) == 1
    path = report["repro_files"][0]
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["workload"] == "mesh"
    assert payload["seed"] == 1
    assert payload["failure"]
    assert payload["plan"] is not None
    # the shrunken plan still fails when re-run
    rerun = run_case(
        WORKLOADS["mesh"], 1, FaultPlan.from_dict(payload["plan"]),
        reliable=False, max_events=50_000,
    )
    assert not rerun.ok


def test_run_reproducer_roundtrip(tmp_path):
    payload = {
        "workload": "ring",
        "seed": 2,
        "failure": "synthetic",
        "plan": FaultPlan(default=LinkFaults(drop=0.2)).to_dict(),
    }
    path = tmp_path / "repro.json"
    path.write_text(json.dumps(payload))
    result = run_reproducer(str(path))
    assert result.workload == "ring"
    assert result.seed == 2
    assert result.ok  # with reliable delivery this plan passes


# ---------------------------------------------------------------- purity
def test_fault_layer_disabled_is_byte_identical_to_plain_run():
    """faults=None must construct the plain Network and leave traces
    byte-identical to a system built with no fault arguments at all."""
    def run(**kwargs):
        tracer = Tracer()
        system = HopeSystem(seed=6, latency=ConstantLatency(1.0), trace=tracer, **kwargs)
        build_chaos_mesh(system)
        system.run(max_events=100_000)
        return tracer.fingerprint(), committed_state(system)

    plain = run()
    disabled = run(faults=None, reliable=False, failure_detector=False)
    assert plain == disabled


def test_enabling_faults_perturbs_no_other_stream():
    """The fault layer draws from its own named stream: a fault-free and
    an all-null-plan run must make identical random decisions."""
    def run(plan):
        tracer = Tracer()
        system = HopeSystem(
            seed=6, latency=ConstantLatency(1.0), trace=tracer, faults=plan
        )
        build_chaos_mesh(system)
        system.run(max_events=100_000)
        return tracer.fingerprint()

    assert run(None) == run(FaultPlan())


# ---------------------------------------------------------------- kernels
def test_chaos_case_identical_under_heap_and_wheel_kernels():
    """Spot check of the kernel differential on a chaotic case: the storm
    plan (drops + dups + reorder + jitter) must produce byte-identical
    fingerprints and committed state whichever event-queue kernel runs it
    (the full matrix lives in tests/sim/test_wheel_kernel.py)."""
    workload = WORKLOADS["mesh"]
    plan = standard_plans("mesh")["storm"]
    heap = run_case(workload, 3, plan, detector=True, kernel="heap")
    wheel = run_case(workload, 3, plan, detector=True, kernel="wheel")
    assert heap.ok and wheel.ok
    assert heap.fingerprint == wheel.fingerprint
    assert heap.committed == wheel.committed
