"""Unit tests for the JSONL / Prometheus / summary exporters."""

import json

import pytest

from repro.core import Machine
from repro.obs import (
    MetricsRegistry,
    SpanCollector,
    SpeculationMetrics,
    render,
    summary,
    to_jsonl,
    to_prometheus,
)


@pytest.fixture
def populated():
    """A registry + span collector fed by one guess/affirm round."""
    registry = MetricsRegistry()
    spec = SpeculationMetrics(registry)
    spans = SpanCollector()
    machine = Machine(strict=True)
    clock = {"now": 0.0}
    machine.subscribe(lambda event: spec.observe_event(event, clock["now"]))
    machine.subscribe(lambda event: spans.observe(event, clock["now"]))
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    clock["now"] = 1.0
    machine.guess("p", x)
    clock["now"] = 4.0
    machine.affirm("q", x)
    return registry, spans, spec


def test_jsonl_rows_parse_and_cover_everything(populated):
    registry, spans, _ = populated
    lines = to_jsonl(registry, spans).splitlines()
    rows = [json.loads(line) for line in lines]
    metric_rows = [r for r in rows if r["type"] in ("counter", "gauge", "histogram")]
    span_rows = [r for r in rows if r["type"] == "span"]
    assert len(metric_rows) == len(registry)
    assert len(span_rows) == len(spans)
    by_name = {r["name"]: r for r in metric_rows}
    assert by_name["hope_guesses_total"]["value"] == 1
    latency = by_name["hope_commit_latency"]
    assert latency["count"] == 1
    assert latency["sum"] == pytest.approx(3.0)
    # the +Inf tail serializes as a string, not Infinity (invalid JSON)
    assert latency["buckets"][-1][0] == "+Inf"
    assert span_rows[0]["disposition"] == "finalized"


def test_jsonl_empty_registry_is_empty_string():
    assert to_jsonl(MetricsRegistry()) == ""


def test_prometheus_format(populated):
    registry, _, _ = populated
    text = to_prometheus(registry)
    assert "# TYPE hope_guesses_total counter\nhope_guesses_total 1\n" in text
    assert "# HELP hope_guesses_total" in text
    # histogram: cumulative buckets, +Inf equals _count, sum without .0
    assert 'hope_commit_latency_bucket{le="+Inf"} 1' in text
    assert "hope_commit_latency_sum 3\n" in text
    assert "hope_commit_latency_count 1" in text
    cumulative = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("hope_commit_latency_bucket")
    ]
    assert cumulative == sorted(cumulative)


def test_prometheus_float_rendering():
    registry = MetricsRegistry()
    registry.gauge("g").set(2.5)
    registry.counter("c").inc(3)
    text = to_prometheus(registry)
    assert "\ng 2.5" in text
    assert "\nc 3" in text


def test_summary_table(populated):
    registry, spans, spec = populated
    text = summary(registry, spans, spec)
    assert "speculation metrics" in text
    assert "hope_guesses_total" in text
    assert "wasted-work ratio" in text
    assert "interval spans" in text
    assert "✓" in text
    # histogram line carries n / mean / conservative quantiles
    assert "n=1 mean=3" in text


def test_summary_without_spans_or_spec():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    text = summary(registry)
    assert "derived" not in text
    assert "interval spans" not in text


def test_render_dispatch(populated):
    registry, spans, spec = populated
    assert render("jsonl", registry, spans) == to_jsonl(registry, spans)
    assert render("prom", registry) == to_prometheus(registry)
    assert render("summary", registry, spans, spec) == summary(registry, spans, spec)
    with pytest.raises(ValueError):
        render("xml", registry)


def test_exports_are_pure_functions(populated):
    registry, spans, spec = populated
    for fmt in ("jsonl", "prom", "summary"):
        assert render(fmt, registry, spans, spec) == render(fmt, registry, spans, spec)
