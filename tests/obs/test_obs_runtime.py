"""End-to-end tests: the observability layer wired into HopeSystem."""

import pytest

from repro.core import HopeError
from repro.obs import IntervalSpan, MetricsRegistry, NullRegistry
from repro.runtime import HopeSystem
from repro.sim import Tracer


def _program(decision):
    """Worker guesses, speculatively messages a sink (implicit guess
    there), verifier affirms or denies after thinking."""

    def worker(p):
        x = yield p.aid_init("x")
        yield p.send("verifier", x)
        if (yield p.guess(x)):
            yield p.compute(3.0)
            yield p.send("sink", "speculative-hello")
        else:
            yield p.compute(1.0)

    def sink(p):
        yield p.recv()                 # tagged receive -> implicit guess
        yield p.compute(1.0)

    def verifier(p):
        msg = yield p.recv()
        yield p.compute(10.0)          # long enough that the sink's recv
        if decision == "affirm":       # happens while x is still pending
            yield p.affirm(msg.payload)
        else:
            yield p.deny(msg.payload)

    return worker, sink, verifier


def run_metered(decision):
    registry = MetricsRegistry()
    system = HopeSystem(metrics=registry)
    worker, sink, verifier = _program(decision)
    system.spawn("worker", worker)
    system.spawn("sink", sink)
    system.spawn("verifier", verifier)
    system.run()
    return system, registry


def test_affirm_run_counts_and_latency():
    system, registry = run_metered("affirm")
    spec = system.spec_metrics
    assert spec.guesses.value == 1
    assert spec.implicit_guesses.value == 1
    assert spec.affirms.value == 1
    assert spec.denies.value == 0
    assert spec.rollbacks.value == 0
    assert spec.finalizes.value == 2           # worker's interval + sink's
    assert spec.commit_latency.count == 2
    assert spec._open_guesses == {}
    spans = system.spans.spans()
    assert len(spans) == 2
    assert all(s.disposition is IntervalSpan.FINALIZED for s in spans)
    # the sink's implicit span hangs off the worker's explicit span
    implicit = [s for s in spans if s.aid is None]
    explicit = [s for s in spans if s.aid is not None]
    assert len(implicit) == 1 and len(explicit) == 1
    assert implicit[0].parent is explicit[0]
    assert implicit[0].pid == "sink"


def test_deny_run_counts_rollback_and_waste():
    system, registry = run_metered("deny")
    spec = system.spec_metrics
    stats = system.stats()
    assert spec.denies.value == 1
    assert spec.rollbacks.value == stats["rollbacks"] > 0
    assert spec.restarts.value == stats["restarts"] > 0
    assert spec.wasted_time.value == pytest.approx(stats["wasted_time"])
    assert spec.cascade_depth.count == spec.rollbacks.value
    assert spec.intervals_discarded.value >= 2  # worker's + sink's interval
    dead = [
        s for s in system.spans.spans()
        if s.disposition is IntervalSpan.ROLLED_BACK
    ]
    assert len(dead) == spec.intervals_discarded.value
    assert all(s.cause is not None for s in dead)
    # derived wasted-work ratio agrees with the timeline arithmetic
    system.metrics_snapshot()
    wasted, busy = stats["wasted_time"], stats["busy_time"]
    assert spec.wasted_work_ratio() == pytest.approx(wasted / (wasted + busy))


def test_snapshot_fills_gauges():
    system, registry = run_metered("affirm")
    result = system.metrics_snapshot()
    assert result is registry
    stats = system.stats()
    assert registry.get("hope_messages_sent").value == stats["messages_sent"]
    assert registry.get("hope_sim_events").value == stats["sim_events"]
    assert registry.get("hope_busy_time").value == pytest.approx(stats["busy_time"])
    assert registry.get("hope_resolve_cache_hits").value == stats["resolve_cache_hits"]


def test_export_metrics_all_formats():
    system, _ = run_metered("deny")
    text = system.export_metrics("summary")
    assert "hope_rollbacks_total" in text
    assert "wasted-work ratio" in text
    assert "rolled_back" in text
    jsonl = system.export_metrics("jsonl")
    assert '"type": "span"' in jsonl
    prom = system.export_metrics("prom")
    assert "# TYPE hope_commit_latency histogram" in prom
    with pytest.raises(ValueError):
        system.export_metrics("xml")


def test_unmetered_system_has_no_observability_state():
    system = HopeSystem()
    assert isinstance(system.metrics, NullRegistry)
    assert system.spec_metrics is None
    assert system.spans is None
    with pytest.raises(HopeError):
        system.metrics_snapshot()


def test_metered_run_trace_is_byte_identical():
    def run(metrics):
        tracer = Tracer()
        system = HopeSystem(trace=tracer, metrics=metrics)
        worker, sink, verifier = _program("deny")
        system.spawn("worker", worker)
        system.spawn("sink", sink)
        system.spawn("verifier", verifier)
        system.run()
        return tracer

    plain = run(None)
    nulled = run(NullRegistry())
    metered = run(MetricsRegistry())
    assert plain.format() == nulled.format() == metered.format()
    assert plain.fingerprint() == metered.fingerprint()


def test_crash_discards_open_spans():
    registry = MetricsRegistry()
    system = HopeSystem(metrics=registry)

    def worker(p):
        x = yield p.aid_init("x")
        yield p.guess(x)
        yield p.recv()                 # blocks forever: x never resolves

    system.spawn("worker", worker)
    system.run()
    spec = system.spec_metrics
    assert len(spec._open_guesses) == 1
    assert len(system.spans.open_spans()) == 1
    system.crash_process("worker")
    assert spec._open_guesses == {}
    assert system.spans.open_spans() == []
    dead = system.spans.spans()[0]
    assert dead.disposition is IntervalSpan.ROLLED_BACK


def test_dependency_dot_delegates_to_inspect():
    registry = MetricsRegistry()
    system = HopeSystem(metrics=registry)

    def worker(p):
        x = yield p.aid_init("x")
        yield p.guess(x)
        yield p.recv()

    system.spawn("worker", worker)
    system.run()
    dot = system.dependency_dot()
    assert dot.startswith("digraph hope")
    assert "worker" in dot
