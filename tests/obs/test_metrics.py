"""Unit tests for the metrics instruments and the speculation set."""

import pytest

from repro.core import Machine
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    SpeculationMetrics,
)
from repro.obs.metrics import CASCADE_DEPTH_BUCKETS, COMMIT_LATENCY_BUCKETS


# ---------------------------------------------------------------- counter
def test_counter_increments():
    c = Counter("c")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5


def test_counter_rejects_negative():
    c = Counter("c")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_sets():
    g = Gauge("g")
    g.set(4.2)
    assert g.value == 4.2
    g.set(1.0)
    assert g.value == 1.0


# ---------------------------------------------------------------- histogram
def test_histogram_bucket_placement():
    h = Histogram("h", (1.0, 5.0, 10.0))
    for value in (0.5, 1.0, 3.0, 10.0, 99.0):
        h.observe(value)
    # bisect_left: a value equal to a bound lands in that bound's bucket
    assert h.counts == [2, 1, 1, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(113.5)
    assert h.mean == pytest.approx(113.5 / 5)


def test_histogram_items_has_inf_tail():
    h = Histogram("h", (1.0,))
    h.observe(2.0)
    assert h.items() == [(1.0, 0), (float("inf"), 1)]


def test_histogram_quantile_is_bucket_bound():
    h = Histogram("h", (1.0, 2.0, 4.0))
    for value in (0.5, 0.5, 1.5, 3.0):
        h.observe(value)
    assert h.quantile(0.5) == 1.0
    assert h.quantile(1.0) == 4.0
    assert Histogram("e", (1.0,)).quantile(0.5) == 0.0
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_validates_buckets():
    with pytest.raises(ValueError):
        Histogram("h", ())
    with pytest.raises(ValueError):
        Histogram("h", (2.0, 1.0))


# ---------------------------------------------------------------- registry
def test_registry_get_or_create():
    reg = MetricsRegistry()
    a = reg.counter("a")
    assert reg.counter("a") is a
    assert reg.get("a") is a
    assert "a" in reg and len(reg) == 1


def test_registry_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("a")
    with pytest.raises(ValueError):
        reg.gauge("a")


def test_registry_iterates_in_registration_order():
    reg = MetricsRegistry()
    reg.counter("z")
    reg.gauge("a")
    reg.histogram("m", (1.0,))
    assert [m.name for m in reg] == ["z", "a", "m"]


def test_registry_snapshot():
    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    reg.histogram("h", (1.0,)).observe(0.5)
    snap = reg.snapshot()
    assert snap["c"] == 2
    assert snap["h"]["count"] == 1
    assert snap["h"]["buckets"][0] == (1.0, 1)


def test_null_registry_is_disabled_and_free():
    reg = NullRegistry()
    assert reg.enabled is False
    c = reg.counter("c")
    c.inc(5)
    assert c.value == 0
    g = reg.gauge("g")
    g.set(9.0)
    assert g.value == 0.0
    h = reg.histogram("h", (1.0,))
    h.observe(3.0)
    assert h.count == 0
    # shared no-op instruments: no per-name allocation
    assert reg.counter("other") is c
    assert len(reg) == 0


# ---------------------------------------------------------------- spec set
@pytest.fixture
def metered_machine():
    machine = Machine(strict=True)
    registry = MetricsRegistry()
    spec = SpeculationMetrics(registry)
    clock = {"now": 0.0}
    machine.subscribe(lambda event: spec.observe_event(event, clock["now"]))
    return machine, spec, clock


def test_guess_and_finalize_observe_commit_latency(metered_machine):
    machine, spec, clock = metered_machine
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    clock["now"] = 1.0
    machine.guess("p", x)
    assert spec.guesses.value == 1
    clock["now"] = 5.0
    machine.affirm("q", x)
    assert spec.affirms.value == 1
    assert spec.affirms_definite.value == 1
    assert spec.finalizes.value == 1
    assert spec.commit_latency.count == 1
    assert spec.commit_latency.sum == pytest.approx(4.0)
    # 4.0 falls in the le=5.0 bucket of the default bounds
    index = COMMIT_LATENCY_BUCKETS.index(5.0)
    assert spec.commit_latency.counts[index] == 1
    assert spec._open_guesses == {}


def test_deny_rollback_observes_cascade_depth(metered_machine):
    machine, spec, clock = metered_machine
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    clock["now"] = 1.0
    machine.guess("p", x)
    machine.guess("p", y)                      # nested: IDO {x, y}
    clock["now"] = 6.0
    machine.deny("q", x)
    assert spec.denies.value == 1
    assert spec.denies_definite.value == 1
    assert spec.rollbacks.value == 1
    assert spec.intervals_discarded.value == 2
    assert spec.cascade_depth.count == 1
    index = CASCADE_DEPTH_BUCKETS.index(2)
    assert spec.cascade_depth.counts[index] == 1
    # discarded intervals never reach the latency histogram
    assert spec.commit_latency.count == 0
    assert spec._open_guesses == {}


def test_guess_on_resolved_aid_counts_skip(metered_machine):
    machine, spec, clock = metered_machine
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.affirm("q", x)
    machine.guess("p", x)
    assert spec.guess_skips.value == 1
    assert spec.guesses.value == 0
    assert spec._open_guesses == {}


def test_forget_intervals_clears_open_guesses(metered_machine):
    machine, spec, clock = metered_machine
    machine.create_process("p")
    x = machine.aid_init("x")
    machine.guess("p", x)
    interval = machine.process("p").current
    assert interval.serial in spec._open_guesses
    spec.forget_intervals([interval])
    assert spec._open_guesses == {}


def test_derived_ratios():
    reg = MetricsRegistry()
    spec = SpeculationMetrics(reg)
    assert spec.wasted_work_ratio() == 0.0
    assert spec.resolve_cache_hit_rate() == 0.0
    spec.wasted_time.inc(3.0)
    spec.busy_time.set(9.0)
    assert spec.wasted_work_ratio() == pytest.approx(3.0 / 12.0)
    spec.resolve_cache_hits.set(3)
    spec.resolve_cache_misses.set(1)
    assert spec.resolve_cache_hit_rate() == pytest.approx(0.75)


def test_spec_set_works_on_null_registry():
    spec = SpeculationMetrics(NullRegistry())
    machine = Machine(strict=True)
    machine.subscribe(lambda event: spec.observe_event(event, 0.0))
    machine.create_process("p")
    x = machine.aid_init("x")
    machine.guess("p", x)
    machine.affirm("p", x)
    assert spec.guesses.value == 0
    assert spec.commit_latency.count == 0
