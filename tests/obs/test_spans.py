"""Unit tests for the interval-lifecycle span collector.

Driven against a bare :class:`repro.core.Machine` with a synthetic
clock, the same embedding the module docstring promises.
"""

import pytest

from repro.core import Machine
from repro.obs import IntervalSpan, SpanCollector


@pytest.fixture
def rig():
    machine = Machine(strict=True)
    spans = SpanCollector()
    clock = {"now": 0.0}
    machine.subscribe(lambda event: spans.observe(event, clock["now"]))
    return machine, spans, clock


def current_span(machine, spans, pid):
    return spans.get(machine.process(pid).current.serial)


def test_span_opens_on_guess_and_closes_on_finalize(rig):
    machine, spans, clock = rig
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    clock["now"] = 1.0
    machine.guess("p", x)
    span = current_span(machine, spans, "p")
    assert span.disposition is IntervalSpan.OPEN
    assert span.aid == x.key
    assert span.deps == (x.key,)
    assert span.pid == "p"
    assert span.duration is None
    assert spans.open_spans() == [span]
    clock["now"] = 4.0
    machine.affirm("q", x)
    assert span.disposition is IntervalSpan.FINALIZED
    assert span.duration == pytest.approx(3.0)
    assert span.cause is None
    assert spans.open_spans() == []


def test_nested_guess_links_same_process_parent(rig):
    machine, spans, clock = rig
    machine.create_process("p")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    machine.guess("p", x)
    outer = current_span(machine, spans, "p")
    machine.guess("p", y)
    inner = current_span(machine, spans, "p")
    assert inner.parent is outer
    assert outer.children == [inner]
    assert spans.roots() == [outer]


def test_cross_process_guess_links_to_aid_owner(rig):
    machine, spans, clock = rig
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    machine.guess("p", x)
    owner = current_span(machine, spans, "p")
    machine.guess("q", x)
    other = current_span(machine, spans, "q")
    # q's interval has no same-process parent; it hangs off the span
    # that first guessed x, stitching the cascade across processes.
    assert other.parent is owner
    assert spans.roots() == [owner]


def test_rollback_closes_cascade_with_cause(rig):
    machine, spans, clock = rig
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    clock["now"] = 1.0
    machine.guess("p", x)
    outer = current_span(machine, spans, "p")
    machine.guess("p", y)
    inner = current_span(machine, spans, "p")
    clock["now"] = 7.0
    machine.deny("q", x)
    assert outer.disposition is IntervalSpan.ROLLED_BACK
    assert inner.disposition is IntervalSpan.ROLLED_BACK
    assert outer.cause == x.key and inner.cause == x.key
    assert outer.duration == pytest.approx(6.0)
    assert spans.cascade_of(x.key) == [outer, inner]
    assert spans.cascade_of(y.key) == []


def test_discard_closes_spans_outside_rollback(rig):
    machine, spans, clock = rig
    machine.create_process("p")
    x = machine.aid_init("x")
    machine.guess("p", x)
    interval = machine.process("p").current
    spans.discard([interval], 9.0, cause="crash")
    span = spans.get(interval.serial)
    assert span.disposition is IntervalSpan.ROLLED_BACK
    assert span.cause == "crash"
    assert span.close_time == 9.0


def test_close_is_idempotent(rig):
    machine, spans, clock = rig
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    clock["now"] = 1.0
    machine.guess("p", x)
    interval = machine.process("p").current
    clock["now"] = 2.0
    machine.affirm("q", x)
    span = spans.get(interval.serial)
    spans.discard([interval], 99.0, cause="late")
    assert span.disposition is IntervalSpan.FINALIZED
    assert span.close_time == 2.0


def test_max_spans_evicts_only_closed(rig):
    machine, spans, _ = rig
    bounded = SpanCollector(max_spans=2)
    machine.subscribe(lambda event: bounded.observe(event, 0.0))
    machine.create_process("p")
    machine.create_process("q")
    resolved = []
    for index in range(3):
        aid = machine.aid_init(f"a{index}")
        machine.guess("p", aid)
        machine.affirm("q", aid)
        resolved.append(aid)
    still_open = machine.aid_init("open")
    machine.guess("p", still_open)
    assert len(bounded) == 2
    assert bounded.truncated
    assert bounded.dropped == 2
    labels = {span.aid for span in bounded.spans()}
    # the open span survives; the oldest closed ones went first
    assert still_open.key in labels
    assert resolved[0].key not in labels and resolved[1].key not in labels
    assert "dropped (max_spans)" in bounded.format_tree()


def test_format_tree_shape(rig):
    machine, spans, clock = rig
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    y = machine.aid_init("y")
    clock["now"] = 1.0
    machine.guess("p", x)
    machine.guess("p", y)
    clock["now"] = 3.0
    machine.deny("q", y)            # kills only the inner interval
    machine.affirm("q", x)
    tree = spans.format_tree()
    lines = tree.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("✓")
    assert lines[1].startswith("  ✗")
    assert f"cause={y.key}" in lines[1]
    assert "finalized" in lines[0] and "rolled_back" in lines[1]


def test_as_dict_is_plain_data(rig):
    machine, spans, clock = rig
    machine.create_process("p")
    machine.create_process("q")
    x = machine.aid_init("x")
    clock["now"] = 2.0
    machine.guess("p", x)
    interval = machine.process("p").current
    clock["now"] = 5.0
    machine.affirm("q", x)
    row = spans.get(interval.serial).as_dict()
    assert row["type"] == "span"
    assert row["pid"] == "p"
    assert row["aid"] == x.key
    assert row["open"] == 2.0 and row["close"] == 5.0
    assert row["duration"] == pytest.approx(3.0)
    assert row["disposition"] == "finalized"
    assert row["parent"] is None
