"""Static-check and interpreter tests for mini-HOPE."""

import pytest

from repro.core import AidStatus
from repro.lang import CheckError, check_program, compile_program, parse
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency


# ---------------------------------------------------------------- checks
def test_undeclared_variable_error():
    report = check_program(parse("process P() { x = 1; }"))
    assert not report.ok
    assert "undeclared" in report.errors[0]


def test_unknown_function_error():
    report = check_program(parse("process P() { frobnicate(1); }"))
    assert any("unknown function" in e for e in report.errors)


def test_builtin_arity_error():
    report = check_program(parse("process P() { guess(); }"))
    assert any("argument" in e for e in report.errors)


def test_duplicate_process_error():
    report = check_program(parse("process P() { } process P() { }"))
    assert any("duplicate" in e for e in report.errors)


def test_double_resolution_warning():
    source = """
    process P() {
        var x = aid_init("x");
        affirm(x);
        deny(x);
    }
    """
    report = check_program(parse(source))
    assert report.ok
    assert any("already resolved" in w for w in report.warnings)


def test_branches_reset_resolution_tracking():
    source = """
    process P(flag) {
        var x = aid_init("x");
        if (flag) { affirm(x); } else { deny(x); }
    }
    """
    report = check_program(parse(source))
    assert report.ok
    assert report.warnings == []


def test_compile_raises_on_errors():
    with pytest.raises(CheckError):
        compile_program("process P() { y = 2; }")


# ---------------------------------------------------------------- interpreter
def run_single(source, name="Main", *args, **system_kwargs):
    compiled = compile_program(source)
    system = HopeSystem(**system_kwargs)
    compiled.spawn(system, "main", name, *args)
    system.run(max_events=500_000)
    return system


def test_arithmetic_and_return():
    source = """
    process Main(a, b) {
        var x = a * 10 + b;
        return x % 7;
    }
    """
    system = run_single(source, "Main", 4, 3)
    assert system.result_of("main") == 43 % 7


def test_emit_and_control_flow():
    source = """
    process Main() {
        var i = 0;
        while (i < 4) {
            if (i % 2 == 0) { emit(tuple("even", i)); } else { emit(tuple("odd", i)); }
            i = i + 1;
        }
    }
    """
    system = run_single(source)
    assert system.outputs("main") == [
        ("even", 0), ("odd", 1), ("even", 2), ("odd", 3)
    ]


def test_compute_advances_clock():
    source = """
    process Main() {
        compute(4.5);
        return now();
    }
    """
    system = run_single(source)
    assert system.result_of("main") == 4.5


def test_message_roundtrip_between_interpreted_processes():
    source = """
    process Pinger(peer) {
        send(peer, "ping");
        var msg = recv();
        return payload(msg);
    }
    process Ponger() {
        var msg = recv();
        send(sender(msg), tuple(payload(msg), "pong"));
    }
    """
    compiled = compile_program(source)
    system = HopeSystem(latency=ConstantLatency(2.0))
    compiled.spawn(system, "ponger", "Ponger")
    compiled.spawn(system, "pinger", "Pinger", "ponger")
    system.run()
    assert system.result_of("pinger") == ("ping", "pong")


def test_guess_affirm_deny_in_language():
    source = """
    process Main(verifier) {
        var x = aid_init("x");
        send(verifier, x);
        if (guess(x)) {
            emit("fast");
            compute(10);
        } else {
            emit("slow");
        }
        emit("done");
    }
    process Verifier(outcome) {
        var msg = recv();
        compute(2);
        if (outcome == "affirm") { affirm(payload(msg)); } else { deny(payload(msg)); }
    }
    """
    compiled = compile_program(source)
    for outcome, expected in [("affirm", ["fast", "done"]), ("deny", ["slow", "done"])]:
        system = HopeSystem()
        compiled.spawn(system, "verifier", "Verifier", outcome)
        compiled.spawn(system, "main", "Main", "verifier")
        system.run()
        assert system.committed_outputs("main") == expected


def test_rollback_restores_interpreter_state():
    """Interpreted variables mutated speculatively must be rolled back."""
    source = """
    process Main(verifier) {
        var acc = 100;
        var x = aid_init("x");
        send(verifier, x);
        if (guess(x)) {
            acc = acc + 1000;
            compute(5);
        }
        return acc;
    }
    process Verifier() {
        var msg = recv();
        compute(1);
        deny(payload(msg));
    }
    """
    compiled = compile_program(source)
    system = HopeSystem()
    compiled.spawn(system, "verifier", "Verifier")
    compiled.spawn(system, "main", "Main", "verifier")
    system.run()
    assert system.result_of("main") == 100


def test_free_of_in_language():
    source = """
    process Main(checker) {
        var x = aid_init("x");
        send(checker, x);
        guess(x);
        compute(5);
    }
    process Checker() {
        var msg = recv();
        free_of(payload(msg));
    }
    """
    compiled = compile_program(source)
    system = HopeSystem()
    compiled.spawn(system, "checker", "Checker")
    compiled.spawn(system, "main", "Main", "checker")
    system.run()
    [aid] = system.machine.aids.values()
    assert aid.status is AidStatus.AFFIRMED


def test_rpc_call_builtin():
    source = """
    process Client(server) {
        var a = call(server, tuple("add", 2, 3));
        var b = call(server, tuple("add", a, 10));
        return b;
    }
    process Server() {
        while (true) {
            var msg = recv();
            var req = payload(msg);
            reply(msg, nth(req, 1) + nth(req, 2));
        }
    }
    """
    compiled = compile_program(source)
    system = HopeSystem(latency=ConstantLatency(1.0))
    compiled.spawn(system, "server", "Server")
    compiled.spawn(system, "client", "Client", "server")
    system.run()
    assert system.result_of("client") == 15


def test_wrong_arg_count_at_spawn():
    compiled = compile_program("process Main(a, b) { return a + b; }")
    system = HopeSystem()
    compiled.spawn(system, "main", "Main", 1)
    from repro.lang import HopeLangError

    with pytest.raises(HopeLangError):
        system.run()
