"""Lexer and parser tests for mini-HOPE."""

import pytest

from repro.lang import LexError, ParseError, parse, tokenize
from repro.lang import ast
from repro.lang.tokens import EOF, KEYWORD, NAME, NUMBER, OP, STRING


# ---------------------------------------------------------------- lexer
def kinds(source):
    return [t.kind for t in tokenize(source)]


def test_tokenize_basics():
    tokens = tokenize('var x = 42; // a comment\nsend("dst", 3.5);')
    values = [(t.kind, t.value) for t in tokens if t.kind != EOF]
    assert (KEYWORD, "var") in values
    assert (NAME, "x") in values
    assert (NUMBER, "42") in values
    assert (STRING, "dst") in values
    assert (NUMBER, "3.5") in values


def test_tokenize_multichar_operators():
    tokens = tokenize("a == b != c <= d >= e && f || g")
    ops = [t.value for t in tokens if t.kind == OP]
    assert ops == ["==", "!=", "<=", ">=", "&&", "||"]


def test_string_escapes():
    [token, _eof] = tokenize(r'"a\n\t\"\\"')
    assert token.value == 'a\n\t"\\'


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"unterminated')


def test_unknown_character_raises():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_line_numbers_tracked():
    tokens = tokenize("a\nb\n  c")
    named = [t for t in tokens if t.kind == NAME]
    assert [(t.line, t.col) for t in named] == [(1, 1), (2, 1), (3, 3)]


# ---------------------------------------------------------------- parser
def test_parse_empty_process():
    program = parse("process Main() { }")
    assert program.names() == ["Main"]
    assert program.process("Main").body == ()


def test_parse_params_and_statements():
    source = """
    process Worker(total, limit) {
        var x = total + 1;
        x = x * 2;
        if (x > limit) { emit("big"); } else { emit("small"); }
        while (x > 0) { x = x - 1; }
        return x;
    }
    """
    proc = parse(source).process("Worker")
    assert proc.params == ("total", "limit")
    assert isinstance(proc.body[0], ast.VarDecl)
    assert isinstance(proc.body[1], ast.Assign)
    assert isinstance(proc.body[2], ast.If)
    assert isinstance(proc.body[3], ast.While)
    assert isinstance(proc.body[4], ast.Return)


def test_parse_else_if_chain():
    source = """
    process P(x) {
        if (x == 1) { skip; } else if (x == 2) { skip; } else { skip; }
    }
    """
    stmt = parse(source).process("P").body[0]
    assert isinstance(stmt, ast.If)
    assert isinstance(stmt.otherwise[0], ast.If)


def test_operator_precedence():
    source = "process P() { var x = 1 + 2 * 3 == 7 && true; }"
    decl = parse(source).process("P").body[0]
    top = decl.init
    assert isinstance(top, ast.Binary) and top.op == "&&"
    cmp_node = top.left
    assert cmp_node.op == "=="
    assert cmp_node.left.op == "+"
    assert cmp_node.left.right.op == "*"


def test_indexing_parses():
    decl = parse("process P(m) { var x = m[0][1]; }").process("P").body[0]
    assert isinstance(decl.init, ast.Index)
    assert isinstance(decl.init.base, ast.Index)


def test_call_expression():
    decl = parse('process P() { var x = tuple(1, "a", true); }').process("P").body[0]
    assert isinstance(decl.init, ast.CallExpr)
    assert decl.init.func == "tuple"
    assert len(decl.init.args) == 3


def test_missing_semicolon_raises():
    with pytest.raises(ParseError):
        parse("process P() { var x = 1 }")


def test_unbalanced_braces_raise():
    with pytest.raises(ParseError):
        parse("process P() { if (true) { skip; }")


def test_multiple_processes():
    program = parse("process A() { } process B() { }")
    assert program.names() == ["A", "B"]
    with pytest.raises(KeyError):
        program.process("C")
