"""Interpreter runtime error paths and value semantics."""

import pytest

from repro.lang import HopeLangError, compile_program
from repro.runtime import HopeSystem


def run_main(source, *args):
    compiled = compile_program(source)
    system = HopeSystem()
    compiled.spawn(system, "main", "Main", *args)
    system.run(max_events=100_000)
    return system


def test_bad_index_raises_hopelang_error():
    source = 'process Main() { var t = tuple(1, 2); return t[9]; }'
    with pytest.raises(HopeLangError, match="bad index"):
        run_main(source)


def test_bad_operands_raise():
    source = 'process Main() { return 1 + "s"; }'
    with pytest.raises(HopeLangError, match="bad operands"):
        run_main(source)


def test_division_produces_float():
    system = run_main("process Main() { return 7 / 2; }")
    assert system.result_of("main") == 3.5


def test_modulo_and_precedence():
    system = run_main("process Main() { return 17 % 5 + 2 * 3; }")
    assert system.result_of("main") == 8


def test_unary_negation_and_not():
    system = run_main("process Main() { return -(3) + 10; }")
    assert system.result_of("main") == 7
    system = run_main("process Main() { if (!false) { return 1; } return 0; }")
    assert system.result_of("main") == 1


def test_short_circuit_and_or():
    # RHS would crash if evaluated: short-circuit must protect it
    source = 'process Main() { var t = tuple(1); return false && t[9] == 1; }'
    system = run_main(source)
    assert system.result_of("main") is False
    source = 'process Main() { var t = tuple(1); return true || t[9] == 1; }'
    system = run_main(source)
    assert system.result_of("main") is True


def test_nil_and_booleans_roundtrip():
    system = run_main("process Main(v) { if (v == nil) { return true; } return false; }", None)
    assert system.result_of("main") is True


def test_str_len_nth_builtins():
    source = """
    process Main() {
        var t = tuple("a", "bc", 3);
        return str(len(t)) + str(nth(t, 2));
    }
    """
    assert run_main(source).result_of("main") == "33"


def test_var_without_initializer_is_nil():
    system = run_main("process Main() { var x; return x == nil; }")
    assert system.result_of("main") is True


def test_while_with_return_exits_loop():
    source = """
    process Main() {
        var i = 0;
        while (true) {
            i = i + 1;
            if (i == 5) { return i; }
        }
    }
    """
    assert run_main(source).result_of("main") == 5


def test_process_without_return_yields_none():
    system = run_main("process Main() { compute(1); }")
    assert system.result_of("main") is None


def test_shadowing_warning_surfaced():
    compiled = compile_program("process Main() { var x = 1; var x = 2; }")
    assert any("shadows" in w for w in compiled.warnings)
