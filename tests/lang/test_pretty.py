"""Pretty-printer round-trip: parse → pretty → parse is the identity."""

from hypothesis import given, settings, strategies as st

from repro.lang import parse
from repro.lang.pretty import ast_equal, pretty

SAMPLES = [
    "process Main() { }",
    'process P(a, b) { var x = a + b * 2; return x % 7; }',
    """
    process Worker(total) {
        var PartPage = aid_init("PartPage");
        send("wart", tuple(PartPage, total));
        if (guess(PartPage)) { skip; } else { call("server", tuple("newpage")); }
        compute(1.5);
    }
    """,
    """
    process Loop() {
        var i = 0;
        while (i < 10) {
            if (i % 2 == 0) { emit(i); } else { skip; }
            i = i + 1;
        }
        return nil;
    }
    """,
    'process S() { var m = recv(); reply(m, payload(m)[0]); }',
    'process Ops() { var a = !(1 < 2) || true && false; var b = -3 - -4; }',
    'process Str() { emit("line\\nbreak\\t\\"quoted\\""); }',
    "process Chain(x) { if (x == 1) { skip; } else { if (x == 2) { skip; } else { emit(x); } } }",
]


def test_round_trip_on_samples():
    for source in SAMPLES:
        first = parse(source)
        printed = pretty(first)
        second = parse(printed)
        assert ast_equal(first, second), printed
        # pretty is a fixed point
        assert pretty(second) == printed


def test_precedence_parens_preserved():
    source = "process P() { var x = (1 + 2) * 3; var y = 1 + 2 * 3; }"
    program = parse(source)
    printed = pretty(program)
    assert "(1 + 2) * 3" in printed
    assert "1 + 2 * 3" in printed
    assert ast_equal(program, parse(printed))


# --------------------------------------------------------------- fuzzing
_names = st.sampled_from(["a", "b", "c", "x", "y"])
_literals = st.one_of(
    st.integers(min_value=0, max_value=999).map(lambda n: str(n)),
    st.sampled_from(["true", "false", "nil", '"s"', "1.5"]),
)


@st.composite
def _exprs(draw, depth=0):
    if depth > 2:
        return draw(_literals)
    choice = draw(st.integers(min_value=0, max_value=4))
    if choice == 0:
        return draw(_literals)
    if choice == 1:
        return draw(_names)
    if choice == 2:
        op = draw(st.sampled_from(["+", "-", "*", "==", "<", "&&", "||"]))
        left = draw(_exprs(depth + 1))
        right = draw(_exprs(depth + 1))
        return f"({left} {op} {right})"
    if choice == 3:
        inner = draw(_exprs(depth + 1))
        return f"(!{inner})"
    args = draw(st.lists(_exprs(depth + 1), max_size=2))
    return f"tuple({', '.join(args)})"


@st.composite
def _programs(draw):
    statements = []
    declared = []
    n = draw(st.integers(min_value=1, max_value=5))
    for index in range(n):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0 or not declared:
            name = f"v{index}"
            statements.append(f"var {name} = {draw(_exprs())};")
            declared.append(name)
        elif kind == 1:
            target = draw(st.sampled_from(declared))
            statements.append(f"{target} = {draw(_exprs())};")
        elif kind == 2:
            statements.append(
                f"if ({draw(_exprs())}) {{ skip; }} else {{ emit({draw(_exprs())}); }}"
            )
        else:
            statements.append(f"emit({draw(_exprs())});")
    body = " ".join(statements)
    params = ", ".join(draw(st.lists(_names, unique=True, max_size=2)))
    return f"process Fuzz({params}) {{ {body} }}"


@settings(max_examples=150, deadline=None)
@given(_programs())
def test_round_trip_fuzzed(source):
    first = parse(source)
    printed = pretty(first)
    second = parse(printed)
    assert ast_equal(first, second), printed
    assert pretty(second) == printed
