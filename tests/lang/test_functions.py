"""User-defined functions in mini-HOPE."""

import pytest

from repro.lang import CheckError, check_program, compile_program, parse
from repro.lang.pretty import ast_equal, pretty
from repro.runtime import HopeSystem


def run_main(source, *args, **system_kwargs):
    compiled = compile_program(source)
    system = HopeSystem(**system_kwargs)
    compiled.spawn(system, "main", "Main", *args)
    system.run(max_events=200_000)
    return system


def test_simple_function_call():
    source = """
    func double(x) { return x * 2; }
    process Main(n) { return double(n) + 1; }
    """
    assert run_main(source, 10).result_of("main") == 21


def test_recursive_function():
    source = """
    func fib(n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    process Main() { return fib(10); }
    """
    assert run_main(source).result_of("main") == 55


def test_function_scope_is_isolated():
    source = """
    func helper(x) { var local = x + 1; return local; }
    process Main() {
        var local = 100;
        var result = helper(1);
        return tuple(local, result);
    }
    """
    assert run_main(source).result_of("main") == (100, 2)


def test_function_without_return_yields_nil():
    source = """
    func shout(x) { emit(x); }
    process Main() { return shout("hi") == nil; }
    """
    system = run_main(source)
    assert system.result_of("main") is True
    assert system.outputs("main") == ["hi"]


def test_function_with_effects_participates_in_speculation():
    source = """
    func work(units) { compute(units); emit("worked"); return units; }
    process Main(verifier) {
        var x = aid_init("x");
        send(verifier, x);
        if (guess(x)) {
            work(10);
        } else {
            work(1);
        }
        return now();
    }
    process Verifier() {
        var msg = recv();
        compute(2);
        deny(payload(msg));
    }
    """
    compiled = compile_program(source)
    system = HopeSystem()
    compiled.spawn(system, "verifier", "Verifier")
    compiled.spawn(system, "main", "Main", "verifier")
    system.run(max_events=200_000)
    # the speculative work("worked") emit was withdrawn; only the
    # pessimistic one committed
    assert system.committed_outputs("main") == ["worked"]
    assert system.stats()["rollbacks"] == 1


def test_rpc_corr_unique_across_function_frames():
    source = """
    func ask(server, value) { return call(server, value); }
    process Main(server) {
        var a = ask(server, 1);
        var b = ask(server, 2);
        return tuple(a, b);
    }
    process Echo() {
        while (true) { var m = recv(); reply(m, payload(m) * 10); }
    }
    """
    compiled = compile_program(source)
    system = HopeSystem()
    compiled.spawn(system, "server", "Echo")
    compiled.spawn(system, "main", "Main", "server")
    system.run(max_events=200_000)
    assert system.result_of("main") == (10, 20)


def test_function_shadowing_builtin_rejected():
    with pytest.raises(CheckError, match="shadows a builtin"):
        compile_program("func len(x) { return 0; } process Main() { }")


def test_duplicate_function_rejected():
    with pytest.raises(CheckError, match="duplicate function"):
        compile_program(
            "func f(x) { return x; } func f(y) { return y; } process Main() { }"
        )


def test_function_arity_checked_statically():
    with pytest.raises(CheckError, match="takes 2 argument"):
        compile_program(
            "func add(a, b) { return a + b; } process Main() { return add(1); }"
        )


def test_functions_checked_for_undeclared_vars():
    report = check_program(parse("func f() { return ghost; } process Main() { }"))
    assert any("ghost" in e for e in report.errors)


def test_pretty_round_trip_with_functions():
    source = """
    func add(a, b) { return a + b; }
    process Main() { return add(1, 2); }
    """
    first = parse(source)
    printed = pretty(first)
    assert printed.startswith("func add(a, b)")
    assert ast_equal(first, parse(printed))
