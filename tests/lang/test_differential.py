"""Differential fuzzing: mini-HOPE expression semantics vs Python's.

Random integer arithmetic/comparison/logic expressions are rendered as
mini-HOPE source and as Python source; both evaluations must agree.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.lang import compile_program
from repro.runtime import HopeSystem


@st.composite
def int_exprs(draw, depth=0):
    """Build (hope_source, python_source) pairs of integer expressions."""
    if depth > 3 or draw(st.booleans()) and depth > 1:
        n = draw(st.integers(min_value=0, max_value=50))
        return (str(n), str(n))
    op = draw(st.sampled_from(["+", "-", "*", "%"]))
    left_h, left_p = draw(int_exprs(depth + 1))
    right_h, right_p = draw(int_exprs(depth + 1))
    if op == "%":
        # force a strictly positive divisor (squares are non-negative)
        right_h = f"(({right_h} * {right_h}) + 1)"
        right_p = f"(({right_p} * {right_p}) + 1)"
    return (f"({left_h} {op} {right_h})", f"({left_p} {op} {right_p})")


@st.composite
def bool_exprs(draw):
    cmp_op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
    left_h, left_p = draw(int_exprs())
    right_h, right_p = draw(int_exprs())
    h = f"({left_h} {cmp_op} {right_h})"
    p = f"({left_p} {cmp_op} {right_p})"
    if draw(st.booleans()):
        h2, p2 = draw(st.tuples(st.just("true"), st.just("True")))
        logic = draw(st.sampled_from(["&&", "||"]))
        py_logic = {"&&": "and", "||": "or"}[logic]
        h = f"({h} {logic} {h2})"
        p = f"({p} {py_logic} {p2})"
    return (h, p)


def run_hope_expr(source_expr):
    compiled = compile_program(f"process Main() {{ return {source_expr}; }}")
    system = HopeSystem()
    compiled.spawn(system, "main", "Main")
    system.run(max_events=50_000)
    return system.result_of("main")


@settings(max_examples=120, deadline=None)
@given(int_exprs())
def test_integer_expressions_match_python(pair):
    hope_src, python_src = pair
    assert run_hope_expr(hope_src) == eval(python_src)


@settings(max_examples=80, deadline=None)
@given(bool_exprs())
def test_boolean_expressions_match_python(pair):
    hope_src, python_src = pair
    assert bool(run_hope_expr(hope_src)) == bool(eval(python_src))
