"""Differential tests: the timer-wheel kernel against the heap oracle.

The wheel is only admissible because it implements the exact same
(time, priority, seq) total order as the binary heap — every test here
runs the same workload under ``kernel="heap"`` and ``kernel="wheel"``
and asserts byte-identical outcomes: execution sequences for the raw
simulator, trace fingerprints for full HOPE systems (across seeds,
fault plans, fossil collection, fast rollback, and shuffled ties).
"""

import random

import pytest

from repro.bench.workloads import build_chaos_mesh, build_chaos_ring
from repro.chaos import WORKLOADS, run_case, standard_plans
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency, Simulator, Tracer


# ----------------------------------------------------------------------
# raw kernel: randomized schedule/cancel workloads
# ----------------------------------------------------------------------
def _drive_random_workload(kernel: str, seed: int) -> list[tuple[float, int]]:
    """Execute a randomized schedule/cancel/reschedule storm and return
    the exact (time, tag) execution sequence."""
    rng = random.Random(seed)
    sim = Simulator(kernel=kernel)
    fired: list[tuple[float, int]] = []
    outstanding: list = []
    counter = iter(range(10**9))

    def fire(tag: int) -> None:
        fired.append((sim.now, tag))
        # occasionally schedule follow-ups from inside an event
        r = rng.random()
        if r < 0.40:
            delay = rng.choice([0.0, 0.1, 0.33, 1.0, 7.7, 64.0, 5000.0])
            outstanding.append(sim.schedule(delay, fire, next(counter)))
        if r < 0.15 and outstanding:
            outstanding.pop(rng.randrange(len(outstanding))).cancel()

    for _ in range(300):
        delay = rng.random() * rng.choice([1.0, 10.0, 1000.0, 300000.0])
        outstanding.append(sim.schedule(delay, fire, next(counter)))
    for _ in range(60):
        outstanding.pop(rng.randrange(len(outstanding))).cancel()
    sim.run(max_events=50_000)
    return fired


@pytest.mark.parametrize("seed", range(8))
def test_random_workload_identical_between_kernels(seed):
    heap = _drive_random_workload("heap", seed)
    wheel = _drive_random_workload("wheel", seed)
    assert heap == wheel


def test_tie_breaker_order_identical_between_kernels():
    """Priority-shuffled same-time events fire in the same (permuted)
    order under both kernels."""

    def run(kernel):
        rng = random.Random(42)
        sim = Simulator(
            kernel=kernel, tie_breaker=lambda: rng.randint(0, 1 << 30)
        )
        order = []
        for tag in range(32):
            sim.schedule(1.0, order.append, tag)
        for tag in range(32, 48):
            sim.schedule(2.0, order.append, tag)
        sim.run()
        return order

    assert run("heap") == run("wheel")


# ----------------------------------------------------------------------
# full HOPE systems: trace fingerprints across engine modes
# ----------------------------------------------------------------------
def _system_fingerprint(kernel: str, build, seed: int, **system_kw) -> str:
    tracer = Tracer()
    system = HopeSystem(
        seed=seed,
        latency=ConstantLatency(1.0),
        trace=tracer,
        kernel=kernel,
        **system_kw,
    )
    build(system)
    system.run(max_events=200_000)
    return tracer.fingerprint()


_ENGINE_MODES = {
    "plain": {},
    "fossil": {"fossil_collect": True, "fossil_interval": 4},
    "fast-rollback": {"fast_rollback": True},
    "fossil+fast": {
        "fossil_collect": True,
        "fossil_interval": 4,
        "fast_rollback": True,
    },
    "shuffled": {"shuffle_ties": True},
}


@pytest.mark.parametrize("mode", sorted(_ENGINE_MODES))
@pytest.mark.parametrize("seed", [0, 3])
@pytest.mark.parametrize("build", [build_chaos_mesh, build_chaos_ring])
def test_hope_fingerprints_identical_between_kernels(build, seed, mode):
    kw = _ENGINE_MODES[mode]
    heap = _system_fingerprint("heap", build, seed, **kw)
    wheel = _system_fingerprint("wheel", build, seed, **kw)
    assert heap == wheel


# ----------------------------------------------------------------------
# fault-plan matrix: chaos cases heap vs wheel
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("seed", [1, 2])
def test_fault_matrix_fingerprints_identical_between_kernels(workload, seed):
    """The full standard fault-plan matrix (drops, dups, reorder, jitter,
    storm, partition) produces byte-identical trace fingerprints under
    both kernels."""
    wl = WORKLOADS[workload]
    plans = dict(standard_plans(workload))
    plans["fault-free"] = None
    for plan_name, plan in sorted(plans.items()):
        heap = run_case(wl, seed, plan, plan_name=plan_name, kernel="heap")
        wheel = run_case(wl, seed, plan, plan_name=plan_name, kernel="wheel")
        assert heap.ok, (plan_name, heap.failure)
        assert wheel.ok, (plan_name, wheel.failure)
        assert heap.fingerprint == wheel.fingerprint, plan_name
        assert heap.committed == wheel.committed, plan_name
