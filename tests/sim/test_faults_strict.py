"""Strict fault-plan deserialization (ISSUE satellite): a typo'd key in a
hand-edited reproducer must fail loudly with the offending and allowed
keys named — a silently ignored ``"drp": 0.5`` would run fault-free and
green-light a chaos case that tested nothing.
"""

import pytest

from repro.sim import FaultPlan, LinkFaults, Partition


class TestLinkFaultsStrict:
    def test_unknown_key_rejected_with_names(self):
        with pytest.raises(ValueError) as exc:
            LinkFaults.from_dict({"drp": 0.5})
        msg = str(exc.value)
        assert "drp" in msg and "drop" in msg and "jitter" in msg

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="expected a JSON object"):
            LinkFaults.from_dict([0.5])

    def test_valid_keys_still_roundtrip(self):
        lf = LinkFaults(drop=0.1, reorder=0.2, reorder_window=3.0)
        assert LinkFaults.from_dict(lf.to_dict()) == lf


class TestPartitionStrict:
    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError) as exc:
            Partition.from_dict({"a": ["x"], "b": ["y"], "begin": 3})
        msg = str(exc.value)
        assert "begin" in msg and "start" in msg and "heal_at" in msg

    def test_valid_roundtrip(self):
        part = Partition(("x",), ("y",), start=2.0, heal_at=9.0)
        assert Partition.from_dict(part.to_dict()) == part


class TestFaultPlanStrict:
    def test_top_level_unknown_key_rejected(self):
        with pytest.raises(ValueError) as exc:
            FaultPlan.from_dict({"default": {}, "linkz": []})
        assert "linkz" in str(exc.value)

    def test_link_entry_unknown_key_rejected_with_index(self):
        data = {
            "links": [
                {"src": "a", "dst": "b", "faults": {}},
                {"src": "a", "dst": "b", "faultz": {}},
            ]
        }
        with pytest.raises(ValueError) as exc:
            FaultPlan.from_dict(data)
        msg = str(exc.value)
        assert "links[1]" in msg and "faultz" in msg

    def test_link_entry_missing_key_rejected(self):
        with pytest.raises(ValueError, match=r"links\[0\].*missing.*faults"):
            FaultPlan.from_dict({"links": [{"src": "a", "dst": "b"}]})

    def test_nested_linkfaults_typo_surfaces(self):
        with pytest.raises(ValueError, match="drp"):
            FaultPlan.from_dict({"default": {"drp": 0.5}})

    def test_nested_partition_typo_surfaces(self):
        data = {"partitions": [{"a": ["x"], "b": ["y"], "heals_at": 5}]}
        with pytest.raises(ValueError, match="heals_at"):
            FaultPlan.from_dict(data)

    def test_full_plan_roundtrip_unchanged(self):
        plan = FaultPlan(
            default=LinkFaults(drop=0.1),
            links={("a", "b"): LinkFaults(jitter=2.0)},
            partitions=(Partition(("a",), ("b",), start=1.0, heal_at=4.0),),
        )
        loaded = FaultPlan.from_dict(plan.to_dict())
        assert loaded.default == plan.default
        assert loaded.links == plan.links
        assert loaded.partitions == plan.partitions
