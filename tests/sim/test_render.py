"""Tests for the ASCII timeline renderer."""

from repro.sim import Span, Timeline
from repro.sim.render import render_timeline, render_utilization


def build_timeline():
    timeline = Timeline()
    worker = timeline.process("worker")
    worker.mark(Span.BUSY, 0.0)
    worker.mark(Span.BLOCKED, 4.0)
    worker.mark(Span.BUSY, 6.0)
    worker.close(10.0)
    worker.reclassify_since(6.0, Span.WASTED, 10.0)
    verifier = timeline.process("verifier")
    verifier.mark(Span.BLOCKED, 0.0)
    verifier.mark(Span.BUSY, 2.0)
    verifier.close(10.0)
    return timeline


def test_render_contains_rows_and_glyphs():
    text = render_timeline(build_timeline(), horizon=10.0, width=20)
    lines = text.splitlines()
    assert lines[0].startswith("verifier") or lines[0].startswith("worker")
    body = "\n".join(lines[:2])
    assert "#" in body and "." in body and "x" in body
    assert "=busy" in text


def test_render_cell_math():
    text = render_timeline(build_timeline(), horizon=10.0, width=10, processes=["worker"])
    row = text.splitlines()[0]
    cells = row.split("|")[1]
    assert len(cells) == 10
    # 0-4 busy, 4-6 blocked, 6-10 wasted
    assert cells[:4] == "####"
    assert cells[4:6] == ".."
    assert cells[6:] == "xxxx"


def test_render_defaults_horizon_from_spans():
    text = render_timeline(build_timeline(), width=10)
    assert "10" in text.splitlines()[-2]


def test_render_empty_timeline():
    assert render_timeline(Timeline()) .endswith("=rolled-back")


def test_render_span_ending_exactly_at_horizon():
    timeline = Timeline()
    p = timeline.process("p")
    p.mark(Span.BUSY, 8.0)
    p.close(10.0)
    text = render_timeline(timeline, horizon=10.0, width=10, processes=["p"])
    cells = text.splitlines()[0].split("|")[1]
    assert cells == "        ##"


def test_render_zero_length_span_at_horizon_is_clamped():
    # start == horizon used to compute start_cell == width and silently
    # drop the span; it must land in the final cell instead.
    timeline = Timeline()
    p = timeline.process("p")
    p.spans.append(Span(Span.BUSY, 10.0, 10.0))
    text = render_timeline(timeline, horizon=10.0, width=10, processes=["p"])
    cells = text.splitlines()[0].split("|")[1]
    assert cells == "         #"


def test_render_keeps_fully_folded_process_visible():
    timeline = build_timeline()
    # Fold every span of both processes into base totals (commit frontier
    # past the end of the run).
    dropped = timeline.compact_before(10.0)
    assert dropped > 0
    assert all(not timeline.process(n).spans for n in timeline.names())
    text = render_timeline(timeline, horizon=10.0, width=10)
    worker_row = [l for l in text.splitlines() if l.startswith("worker")][0]
    assert "compacted:" in worker_row
    assert "busy=4" in worker_row
    assert "wasted=4" in worker_row
    # names() and the chart agree: both processes still listed.
    assert [l.split()[0] for l in text.splitlines()[:2]] == timeline.names()


def test_base_totals_accessor_returns_copy():
    timeline = build_timeline()
    timeline.compact_before(10.0)
    worker = timeline.process("worker")
    base = worker.base_totals()
    assert base[Span.BUSY] == 4.0
    base[Span.BUSY] = 99.0
    assert worker.base_totals()[Span.BUSY] == 4.0
    # total() still reports the folded durations.
    assert worker.total(Span.BUSY) == 4.0


def test_utilization_summary():
    text = render_utilization(build_timeline(), horizon=10.0)
    assert "worker" in text and "verifier" in text
    worker_line = [l for l in text.splitlines() if l.startswith("worker")][0]
    assert "busy  40.0%" in worker_line
    assert "rolled-back  40.0%" in worker_line
