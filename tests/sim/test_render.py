"""Tests for the ASCII timeline renderer."""

from repro.sim import Span, Timeline
from repro.sim.render import render_timeline, render_utilization


def build_timeline():
    timeline = Timeline()
    worker = timeline.process("worker")
    worker.mark(Span.BUSY, 0.0)
    worker.mark(Span.BLOCKED, 4.0)
    worker.mark(Span.BUSY, 6.0)
    worker.close(10.0)
    worker.reclassify_since(6.0, Span.WASTED, 10.0)
    verifier = timeline.process("verifier")
    verifier.mark(Span.BLOCKED, 0.0)
    verifier.mark(Span.BUSY, 2.0)
    verifier.close(10.0)
    return timeline


def test_render_contains_rows_and_glyphs():
    text = render_timeline(build_timeline(), horizon=10.0, width=20)
    lines = text.splitlines()
    assert lines[0].startswith("verifier") or lines[0].startswith("worker")
    body = "\n".join(lines[:2])
    assert "#" in body and "." in body and "x" in body
    assert "=busy" in text


def test_render_cell_math():
    text = render_timeline(build_timeline(), horizon=10.0, width=10, processes=["worker"])
    row = text.splitlines()[0]
    cells = row.split("|")[1]
    assert len(cells) == 10
    # 0-4 busy, 4-6 blocked, 6-10 wasted
    assert cells[:4] == "####"
    assert cells[4:6] == ".."
    assert cells[6:] == "xxxx"


def test_render_defaults_horizon_from_spans():
    text = render_timeline(build_timeline(), width=10)
    assert "10" in text.splitlines()[-2]


def test_render_empty_timeline():
    assert render_timeline(Timeline()) .endswith("=rolled-back")


def test_utilization_summary():
    text = render_utilization(build_timeline(), horizon=10.0)
    assert "worker" in text and "verifier" in text
    worker_line = [l for l in text.splitlines() if l.startswith("worker")][0]
    assert "busy  40.0%" in worker_line
    assert "rolled-back  40.0%" in worker_line
