"""Property-based tests for the simulation substrate."""

from hypothesis import given, settings, strategies as st

from repro.sim import (
    ConstantLatency,
    Network,
    RandomStreams,
    Recv,
    Simulator,
    Task,
    Timeout,
    Tracer,
)


@settings(max_examples=200, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1000, allow_nan=False), max_size=30))
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.floats(min_value=0, max_value=50, allow_nan=False), max_size=20),
    st.integers(min_value=0, max_value=2**32),
)
def test_same_seed_same_trace(delays, seed):
    def run():
        sim = Simulator()
        streams = RandomStreams(seed)
        tracer = Tracer()
        stream = streams["jitter"]
        for index, delay in enumerate(delays):
            jitter = stream.uniform(0, 5)
            sim.schedule(
                delay + jitter,
                lambda i=index: tracer.record(sim.now, "fire", "p", i=i),
            )
        sim.run()
        return tracer.fingerprint()

    assert run() == run()


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=15))
def test_mailbox_is_fifo_under_equal_latency(payloads):
    sim = Simulator()
    net = Network(sim, ConstantLatency(1.0))
    box = net.register("rx")
    got = []

    def receiver(env):
        for _ in payloads:
            msg = yield Recv(box)
            got.append(msg.payload)

    Task(sim, "rx", receiver).start()
    for value in payloads:
        net.send("tx", "rx", value)
    sim.run()
    assert got == payloads


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=20, allow_nan=False), st.integers()),
        min_size=1,
        max_size=12,
    )
)
def test_messages_deliver_in_latency_order(sends):
    """With per-message latency overrides, arrival order follows latency
    (ties broken by send order)."""
    sim = Simulator()
    net = Network(sim)
    box = net.register("rx")
    got = []

    def receiver(env):
        for _ in sends:
            msg = yield Recv(box)
            got.append(msg.payload)

    Task(sim, "rx", receiver).start()
    for index, (latency, value) in enumerate(sends):
        net.send("tx", "rx", (latency, index, value), latency_override=latency)
    sim.run()
    expected = sorted(
        [(lat, index, value) for index, (lat, value) in enumerate(sends)],
        key=lambda t: (t[0], t[1]),
    )
    assert got == expected


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=8))
def test_random_streams_independent_and_stable(seed, name):
    a = RandomStreams(seed)
    b = RandomStreams(seed)
    assert [a[name].random() for _ in range(4)] == [
        b[name].random() for _ in range(4)
    ]
    other = name + "'"
    assert a[name].seed != a[other].seed


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False), max_size=10))
def test_run_until_is_prefix_of_full_run(delays):
    """Running to a horizon then continuing equals one uninterrupted run."""
    def collect(split):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
        if split is not None:
            sim.run(until=split)
        sim.run()
        return fired

    assert collect(None) == collect(5.0)
