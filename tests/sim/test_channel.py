"""Tests for mailboxes, message retraction, and the network."""

import pytest

from repro.sim import (
    ConstantLatency,
    Network,
    Recv,
    SequenceLatency,
    Simulator,
    Task,
    Timeout,
    UnknownEndpointError,
)


def make_net(latency=None):
    sim = Simulator()
    net = Network(sim, latency)
    return sim, net


def test_constant_latency_delays_delivery():
    sim, net = make_net(ConstantLatency(4.0))
    box = net.register("rx")
    got = []

    def receiver(env):
        msg = yield Recv(box)
        got.append((env.now, msg.payload))

    Task(sim, "rx", receiver).start()
    net.send("tx", "rx", "pkt")
    sim.run()
    assert got == [(4.0, "pkt")]


def test_fifo_order_for_equal_latency():
    sim, net = make_net(ConstantLatency(1.0))
    box = net.register("rx")
    got = []

    def receiver(env):
        for _ in range(3):
            msg = yield Recv(box)
            got.append(msg.payload)

    Task(sim, "rx", receiver).start()
    for i in range(3):
        net.send("tx", "rx", i)
    sim.run()
    assert got == [0, 1, 2]


def test_sequence_latency_can_reorder_messages():
    """The Figure 2 race: a later send overtakes an earlier one."""
    sim, net = make_net(SequenceLatency([10.0, 1.0]))
    box = net.register("rx")
    got = []

    def receiver(env):
        for _ in range(2):
            msg = yield Recv(box)
            got.append(msg.payload)

    Task(sim, "rx", receiver).start()
    net.send("tx", "rx", "slow")
    net.send("tx", "rx", "fast")
    sim.run()
    assert got == ["fast", "slow"]


def test_retract_before_delivery_drops_message():
    sim, net = make_net(ConstantLatency(5.0))
    box = net.register("rx")
    delivery = net.send("tx", "rx", "doomed")
    delivery.retract()
    sim.run()
    assert len(box) == 0
    assert not delivery.delivered


def test_retract_after_delivery_marks_dead_and_queue_drops_it():
    sim, net = make_net(ConstantLatency(1.0))
    box = net.register("rx")
    delivery = net.send("tx", "rx", "doomed")
    sim.run()
    assert len(box) == 1
    delivery.retract()
    assert len(box) == 0


def test_dead_message_not_handed_to_waiter():
    sim, net = make_net(ConstantLatency(2.0))
    box = net.register("rx")
    got = []

    def receiver(env):
        msg = yield Recv(box, timeout=10.0)
        got.append(msg)

    Task(sim, "rx", receiver).start()
    delivery = net.send("tx", "rx", "doomed")
    sim.schedule(1.0, delivery.retract)
    sim.run()
    from repro.sim import TIMED_OUT

    assert got == [TIMED_OUT]


def test_predicate_receive_skips_non_matching():
    sim, net = make_net(ConstantLatency(1.0))
    box = net.register("rx")
    got = []

    def receiver(env):
        msg = yield Recv(box, predicate=lambda m: m.payload == "reply")
        got.append(msg.payload)

    Task(sim, "rx", receiver).start()
    net.send("tx", "rx", "noise")
    net.send("tx", "rx", "reply")
    sim.run()
    assert got == ["reply"]
    assert [m.payload for m in box.peek_all()] == ["noise"]


def test_requeue_front_preserves_order():
    sim, net = make_net(ConstantLatency(0.0))
    box = net.register("rx")
    net.send("tx", "rx", "c")
    sim.run()
    first = net.send("tx", "rx", "a").message
    second = net.send("tx", "rx", "b").message
    sim.run()
    drained = box.peek_all()
    assert [m.payload for m in drained] == ["c", "a", "b"]
    # simulate un-receiving a and b
    box._queue.clear()
    box.requeue_front([first, second])
    assert [m.payload for m in box.peek_all()] == ["a", "b"]


def test_requeue_front_wakes_waiting_receiver():
    sim, net = make_net(ConstantLatency(0.0))
    box = net.register("rx")
    got = []

    def receiver(env):
        msg = yield Recv(box)
        got.append(msg.payload)

    delivery = net.send("tx", "rx", "redelivered")
    sim.run()
    message = box.peek_all()[0]
    box._queue.clear()
    Task(sim, "rx", receiver).start()
    sim.run()
    assert got == []
    box.requeue_front([message])
    sim.run()
    assert got == ["redelivered"]


def test_unknown_endpoint_raises():
    sim, net = make_net()
    with pytest.raises(UnknownEndpointError):
        net.send("tx", "nowhere", "lost")


def test_tags_travel_with_message():
    sim, net = make_net(ConstantLatency(1.0))
    box = net.register("rx")
    net.send("tx", "rx", "pkt", tags=frozenset({"a#1", "b#2"}))
    sim.run()
    [msg] = box.peek_all()
    assert msg.tags == frozenset({"a#1", "b#2"})
    assert net.tag_count_total == 2


def test_network_statistics():
    sim, net = make_net()
    net.register("rx")
    net.send("tx", "rx", 1)
    net.send("tx", "rx", 2)
    assert net.messages_sent == 2


def test_retract_after_receipt_keeps_message_dead_for_redelivery_checks():
    """The rollback path: a consumed message retracted later must read as
    dead, so a rolled-back receiver refuses to redeliver it."""
    sim, net = make_net(ConstantLatency(1.0))
    box = net.register("rx")
    got = []

    def receiver(env):
        msg = yield Recv(box)
        got.append(msg)

    Task(sim, "rx", receiver).start()
    delivery = net.send("tx", "rx", "consumed")
    sim.run()
    assert [m.payload for m in got] == ["consumed"]
    assert not got[0].dead
    delivery.retract()                 # sender rolled back after receipt
    assert got[0].dead
    delivery.retract()                 # idempotent: double retraction is safe
    assert got[0].dead


def test_requeue_front_skips_dead_messages_and_keeps_order():
    """Un-receiving after a rollback: dead messages vanish from the
    requeued batch while live ones land ahead of the queued tail, in
    their original order."""
    sim, net = make_net(ConstantLatency(0.0))
    box = net.register("rx")
    first = net.send("tx", "rx", "a")
    second = net.send("tx", "rx", "b")
    third = net.send("tx", "rx", "c")
    sim.run()
    net.send("tx", "rx", "tail")
    sim.run()
    # un-receive a, b, c; b's sender rolled back in the meantime
    consumed = [first.message, second.message, third.message]
    for message in consumed:
        box._queue.remove(message)
    second.retract()
    box.requeue_front(consumed)
    assert [m.payload for m in box.peek_all()] == ["a", "c", "tail"]


def test_purge_then_requeue_front_of_dead_batch_leaves_box_empty():
    sim, net = make_net(ConstantLatency(0.0))
    box = net.register("rx")
    deliveries = [net.send("tx", "rx", i) for i in range(3)]
    sim.run()
    messages = box.peek_all()
    assert box.purge() == 3
    for delivery in deliveries:
        delivery.retract()
    box.requeue_front(messages)
    assert len(box) == 0
