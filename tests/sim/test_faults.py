"""Tests for the deterministic fault layer (repro.sim.faults)."""

import pytest

from repro.sim import (
    ConstantLatency,
    FaultPlan,
    FaultyNetwork,
    LinkFaults,
    NO_FAULTS,
    Partition,
    RandomStreams,
    Recv,
    SimulationError,
    Simulator,
    Task,
)


def make_faulty(plan, seed=7, latency=None):
    sim = Simulator()
    stream = RandomStreams(seed)["faults"]
    net = FaultyNetwork(sim, latency or ConstantLatency(1.0), plan=plan, stream=stream)
    return sim, net


def drain(sim, net, name, count=None):
    box = net.register(name)
    got = []

    def receiver(env):
        while True:
            msg = yield Recv(box)
            got.append(msg.payload)

    Task(sim, name, receiver).start()
    return got


# ---------------------------------------------------------------- LinkFaults
def test_link_faults_validation():
    with pytest.raises(ValueError):
        LinkFaults(drop=1.5)
    with pytest.raises(ValueError):
        LinkFaults(duplicate=-0.1)
    with pytest.raises(ValueError):
        LinkFaults(jitter=-1.0)
    with pytest.raises(ValueError):
        LinkFaults(reorder=0.5)  # needs a positive reorder_window


def test_link_faults_null_replace_and_roundtrip():
    assert NO_FAULTS.is_null
    faults = LinkFaults(drop=0.1, reorder=0.2, reorder_window=3.0)
    assert not faults.is_null
    bumped = faults.replace(drop=0.5)
    assert bumped.drop == 0.5 and bumped.reorder == 0.2
    assert faults.drop == 0.1  # immutable original
    assert LinkFaults.from_dict(faults.to_dict()) == faults


# ---------------------------------------------------------------- Partition
def test_partition_membership_and_window():
    part = Partition(("a", "b"), ("c",), start=5.0, heal_at=10.0)
    assert not part.separates("a", "c", 4.9)
    assert part.separates("a", "c", 5.0)
    assert part.separates("c", "b", 7.0)
    assert not part.separates("a", "b", 7.0)  # same side
    assert not part.separates("a", "c", 10.0)  # healed
    assert part.minority() == frozenset({"c"})
    assert part.isolates("c", 6.0)
    assert not part.isolates("a", 6.0)  # majority side keeps quorum


def test_partition_rejects_overlapping_sides():
    with pytest.raises(ValueError):
        Partition(("a", "b"), ("b", "c"), start=0.0)


def test_partition_never_heals_roundtrip():
    part = Partition(("a",), ("b",), start=1.0)
    assert part.separates("a", "b", 1e9)
    again = Partition.from_dict(part.to_dict())
    assert again.separates("a", "b", 1e9)
    assert again == part


# ---------------------------------------------------------------- FaultPlan
def test_fault_plan_per_link_overrides_and_roundtrip():
    plan = FaultPlan(
        default=LinkFaults(drop=0.1),
        links={("a", "b"): LinkFaults(drop=0.9)},
        partitions=(Partition(("a",), ("b",), start=2.0, heal_at=4.0),),
    )
    assert plan.for_link("a", "b").drop == 0.9
    assert plan.for_link("b", "a").drop == 0.1
    assert plan.partitioned("a", "b", 3.0)
    assert not plan.partitioned("a", "b", 5.0)
    assert not plan.is_null
    again = FaultPlan.from_dict(plan.to_dict())
    assert again.for_link("a", "b").drop == 0.9
    assert again.partitioned("a", "b", 3.0)


def test_faulty_network_requires_stream_for_non_null_plan():
    sim = Simulator()
    with pytest.raises(SimulationError):
        FaultyNetwork(
            sim,
            ConstantLatency(1.0),
            plan=FaultPlan(default=LinkFaults(drop=0.5)),
            stream=None,
        )


# ---------------------------------------------------------------- behaviour
def test_drop_all_loses_every_message():
    sim, net = make_faulty(FaultPlan(default=LinkFaults(drop=1.0)))
    got = drain(sim, net, "rx")
    for i in range(5):
        net.send("tx", "rx", i)
    sim.run()
    assert got == []
    assert net.fault_stats.dropped == 5


def test_duplicate_all_delivers_two_copies():
    sim, net = make_faulty(FaultPlan(default=LinkFaults(duplicate=1.0)))
    got = drain(sim, net, "rx")
    net.send("tx", "rx", "pkt")
    sim.run()
    assert got == ["pkt", "pkt"]
    assert net.fault_stats.duplicated == 1


def test_partition_drops_cross_traffic_until_heal():
    plan = FaultPlan(
        partitions=(Partition(("tx",), ("rx",), start=0.0, heal_at=10.0),)
    )
    sim, net = make_faulty(plan)
    got = drain(sim, net, "rx")
    net.send("tx", "rx", "lost")
    sim.schedule(11.0, lambda: net.send("tx", "rx", "healed"))
    sim.run()
    assert got == ["healed"]
    assert net.fault_stats.partition_dropped == 1


def test_null_plan_matches_plain_network_behaviour():
    sim, net = make_faulty(FaultPlan())
    got = drain(sim, net, "rx")
    for i in range(3):
        net.send("tx", "rx", i)
    sim.run()
    assert got == [0, 1, 2]
    stats = net.fault_stats
    assert (stats.dropped, stats.duplicated, stats.reordered) == (0, 0, 0)


def test_fault_sampling_is_deterministic_per_seed():
    def run(seed):
        plan = FaultPlan(
            default=LinkFaults(drop=0.3, duplicate=0.2, jitter=2.0)
        )
        sim, net = make_faulty(plan, seed=seed)
        got = drain(sim, net, "rx")
        for i in range(20):
            net.send("tx", "rx", i)
        sim.run()
        return got, net.fault_stats.as_dict()

    first = run(21)
    second = run(21)
    different = run(22)
    assert first == second
    assert first != different  # sanity: faults actually vary with the seed


def test_reorder_draws_extra_delay_within_window():
    plan = FaultPlan(default=LinkFaults(reorder=1.0, reorder_window=50.0))
    sim, net = make_faulty(plan)
    box = net.register("rx")
    arrivals = []

    def receiver(env):
        for _ in range(2):
            msg = yield Recv(box)
            arrivals.append((env.now, msg.payload))

    Task(sim, "rx", receiver).start()
    net.send("tx", "rx", "a")
    net.send("tx", "rx", "b")
    sim.run()
    assert net.fault_stats.reordered == 2
    assert all(1.0 <= t <= 51.0 for t, _ in arrivals)


def test_heartbeat_lost_inside_partition_minority():
    plan = FaultPlan(
        partitions=(Partition(("a", "b"), ("c",), start=0.0, heal_at=10.0),)
    )
    sim, net = make_faulty(plan)
    assert net.heartbeat_lost("c")       # isolated minority
    assert not net.heartbeat_lost("a")   # majority side reaches the detector
