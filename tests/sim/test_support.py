"""Tests for latency models, random streams, tracer, failure injection, timeline."""

import pytest

from repro.sim import (
    ConstantLatency,
    CrashRecord,
    ExponentialLatency,
    FailureInjector,
    LinkLatency,
    NullTracer,
    RandomStream,
    RandomStreams,
    SequenceLatency,
    Simulator,
    Span,
    Timeline,
    Tracer,
    UniformLatency,
    derive_seed,
)


# ---------------------------------------------------------------- latency
def test_constant_latency():
    model = ConstantLatency(3.0)
    assert model.sample("a", "b") == 3.0


def test_constant_latency_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatency(-1.0)


def test_uniform_latency_within_bounds():
    streams = RandomStreams(7)
    model = UniformLatency(1.0, 2.0, streams["lat"])
    for _ in range(100):
        assert 1.0 <= model.sample("a", "b") <= 2.0


def test_exponential_latency_respects_minimum():
    streams = RandomStreams(7)
    model = ExponentialLatency(5.0, streams["lat"], minimum=2.0)
    for _ in range(100):
        assert model.sample("a", "b") >= 2.0


def test_sequence_latency_cycles():
    model = SequenceLatency([1.0, 2.0])
    draws = [model.sample("a", "b") for _ in range(4)]
    assert draws == [1.0, 2.0, 1.0, 2.0]


def test_link_latency_routes_per_link():
    model = LinkLatency(
        {("a", "b"): ConstantLatency(1.0)}, default=ConstantLatency(9.0)
    )
    assert model.sample("a", "b") == 1.0
    assert model.sample("b", "a") == 9.0
    model.set_link("b", "a", ConstantLatency(2.0))
    assert model.sample("b", "a") == 2.0


# ---------------------------------------------------------------- random
def test_streams_are_deterministic():
    a = RandomStreams(42)["workload"]
    b = RandomStreams(42)["workload"]
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_are_independent_by_name():
    streams = RandomStreams(42)
    assert derive_seed(42, "x") != derive_seed(42, "y")
    xs = [streams["x"].random() for _ in range(3)]
    ys = [streams["y"].random() for _ in range(3)]
    assert xs != ys


def test_stream_instance_cached():
    streams = RandomStreams(1)
    assert streams["a"] is streams["a"]


def test_bernoulli_bounds():
    stream = RandomStreams(1)["p"]
    with pytest.raises(ValueError):
        stream.bernoulli(1.5)
    assert stream.bernoulli(1.0) is True
    assert stream.bernoulli(0.0) is False


# ---------------------------------------------------------------- tracer
def test_tracer_records_and_counts():
    tracer = Tracer()
    tracer.record(1.0, "send", "p", dst="q")
    tracer.record(2.0, "recv", "q", src="p")
    assert len(tracer) == 2
    assert tracer.count("send") == 1
    assert [r.process for r in tracer.by_category("recv")] == ["q"]
    assert tracer.by_process("p")[0].detail == {"dst": "q"}


def test_tracer_category_filter_still_counts():
    tracer = Tracer(categories={"send"})
    tracer.record(1.0, "send", "p")
    tracer.record(1.0, "recv", "q")
    assert len(tracer) == 1
    assert tracer.count("recv") == 1


def test_tracer_fingerprint_stable_and_sensitive():
    t1, t2, t3 = Tracer(), Tracer(), Tracer()
    for t in (t1, t2):
        t.record(1.0, "send", "p", n=1)
    t3.record(1.0, "send", "p", n=2)
    assert t1.fingerprint() == t2.fingerprint()
    assert t1.fingerprint() != t3.fingerprint()


def test_tracer_max_records_truncates():
    tracer = Tracer(max_records=2)
    for i in range(5):
        tracer.record(float(i), "e", "p", i=i)
    assert len(tracer) == 2
    assert tracer.truncated
    assert tracer.records[0].detail == {"i": 3}


def test_tracer_fingerprint_raises_on_truncated_trace():
    tracer = Tracer(max_records=2)
    for i in range(5):
        tracer.record(float(i), "e", "p", i=i)
    with pytest.raises(ValueError, match="truncated"):
        tracer.fingerprint()
    # The escape hatch still hashes the retained suffix deterministically.
    assert tracer.fingerprint(allow_truncated=True)


def test_null_tracer_records_nothing():
    tracer = NullTracer()
    tracer.record(1.0, "send", "p")
    assert len(tracer) == 0
    assert tracer.count("send") == 0
    assert tracer.counts == {}


def test_null_tracer_refuses_subscribers():
    tracer = NullTracer()
    with pytest.raises(ValueError, match="disabled tracer"):
        tracer.subscribe(lambda rec: None)


def test_tracer_subscribe():
    tracer = Tracer()
    seen = []
    tracer.subscribe(seen.append)
    tracer.record(1.0, "send", "p")
    assert len(seen) == 1


def test_tracer_listeners_see_records_before_truncation():
    # Streaming consumers (e.g. the fossil benchmark's trace digest) must
    # observe *every* record even when max_records retains almost none.
    tracer = Tracer(max_records=1)
    seen = []
    tracer.subscribe(seen.append)
    for i in range(5):
        tracer.record(float(i), "e", "p", i=i)
    assert [r.detail["i"] for r in seen] == [0, 1, 2, 3, 4]
    assert len(tracer) == 1
    assert tracer.truncated


# ---------------------------------------------------------------- failure
def test_crash_at_kills_process():
    sim = Simulator()
    injector = FailureInjector(sim)
    killed = []
    injector.attach(kill_fn=killed.append)
    injector.crash_at("victim", 5.0)
    sim.run()
    assert killed == ["victim"]
    assert injector.crash_count() == 1
    assert injector.crash_count("victim") == 1
    assert injector.crash_count("other") == 0


def test_crash_with_restart():
    sim = Simulator()
    injector = FailureInjector(sim)
    log = []
    injector.attach(
        kill_fn=lambda p: log.append(("kill", p, sim.now)),
        restart_fn=lambda p: log.append(("restart", p, sim.now)),
    )
    injector.crash_at("victim", 2.0, restart_after=3.0)
    sim.run()
    assert log == [("kill", "victim", 2.0), ("restart", "victim", 5.0)]


def test_crash_randomly_schedules_poisson_crashes():
    sim = Simulator()
    injector = FailureInjector(sim)
    injector.attach(kill_fn=lambda p: None)
    stream = RandomStreams(3)["crash"]
    n = injector.crash_randomly("victim", rate=1.0, stream=stream, horizon=20.0)
    assert n > 0
    sim.run()
    assert injector.crash_count("victim") == n


def test_cancel_all_prevents_crashes():
    sim = Simulator()
    injector = FailureInjector(sim)
    killed = []
    injector.attach(kill_fn=killed.append)
    injector.crash_at("victim", 5.0)
    injector.cancel_all()
    sim.run()
    assert killed == []


def test_unattached_injector_raises():
    sim = Simulator()
    injector = FailureInjector(sim)
    injector.crash_at("victim", 1.0)
    with pytest.raises(RuntimeError):
        sim.run()


# ---------------------------------------------------------------- timeline
def test_timeline_accumulates_busy_and_blocked():
    timeline = Timeline()
    tl = timeline.process("p")
    tl.mark(Span.BUSY, 0.0)
    tl.mark(Span.BLOCKED, 3.0)
    tl.mark(Span.BUSY, 5.0)
    tl.close(6.0)
    assert tl.total(Span.BUSY) == pytest.approx(4.0)
    assert tl.total(Span.BLOCKED) == pytest.approx(2.0)
    assert timeline.utilization("p", 6.0) == pytest.approx(4.0 / 6.0)


def test_timeline_mark_same_kind_is_noop():
    tl = Timeline().process("p")
    tl.mark(Span.BUSY, 0.0)
    tl.mark(Span.BUSY, 2.0)
    tl.close(4.0)
    assert len(tl.spans) == 1
    assert tl.total(Span.BUSY) == pytest.approx(4.0)


def test_reclassify_since_marks_wasted_work():
    tl = Timeline().process("p")
    tl.mark(Span.BUSY, 0.0)
    tl.mark(Span.BLOCKED, 4.0)
    tl.mark(Span.BUSY, 6.0)
    wasted = tl.reclassify_since(2.0, Span.WASTED, 8.0)
    assert wasted == pytest.approx(6.0)
    assert tl.total(Span.WASTED) == pytest.approx(6.0)
    assert tl.total(Span.BUSY) == pytest.approx(2.0)
    assert tl.total(Span.BLOCKED) == pytest.approx(0.0)


def test_reclassify_since_does_not_double_count_wasted():
    """A deeper rollback sweeping over an earlier rollback's window must
    not count the already-wasted time again: the per-call returns have to
    sum to the timeline's WASTED aggregate (the wasted-time metric and
    the restart trace records rely on this)."""
    tl = Timeline().process("p")
    tl.mark(Span.BUSY, 0.0)
    first = tl.reclassify_since(4.0, Span.WASTED, 8.0)
    assert first == pytest.approx(4.0)
    tl.mark(Span.BUSY, 8.0)
    # second rollback truncates to an *older* checkpoint at t=2
    second = tl.reclassify_since(2.0, Span.WASTED, 10.0)
    assert second == pytest.approx(4.0)      # [2,4) + [8,10) — not [4,8) again
    assert first + second == pytest.approx(tl.total(Span.WASTED)) == 8.0
    assert tl.total(Span.BUSY) == pytest.approx(2.0)


def test_timeline_aggregate():
    timeline = Timeline()
    timeline.process("a").mark(Span.BUSY, 0.0)
    timeline.process("b").mark(Span.BUSY, 1.0)
    timeline.close_all(5.0)
    assert timeline.aggregate(Span.BUSY) == pytest.approx(5.0 + 4.0)
    assert timeline.names() == ["a", "b"]


# ------------------------------------------------- latency exhaustion
def test_sequence_latency_cycle_false_serves_exact_count():
    model = SequenceLatency([1.0, 2.0, 3.0], cycle=False)
    assert [model.sample("a", "b") for _ in range(3)] == [1.0, 2.0, 3.0]


def test_sequence_latency_exhaustion_raises_naming_link():
    from repro.sim import SimulationError

    model = SequenceLatency([1.0, 2.0], cycle=False)
    model.sample("a", "b")
    model.sample("a", "b")
    with pytest.raises(SimulationError) as exc:
        model.sample("src", "dst")
    assert "'src'->'dst'" in str(exc.value)
    assert "2 value(s)" in str(exc.value)
    assert "cycle=True" in str(exc.value)


def test_sequence_latency_repr_shows_cycle_flag():
    assert "cycle=False" in repr(SequenceLatency([1.0], cycle=False))
    assert "cycle=False" not in repr(SequenceLatency([1.0]))


# ------------------------------------------------- crash/restart contract
def test_crash_at_with_restart_but_no_restart_fn_raises_at_schedule_time():
    from repro.sim import SimulationError

    sim = Simulator()
    injector = FailureInjector(sim)
    injector.attach(kill_fn=lambda p: None)  # no restart_fn
    with pytest.raises(SimulationError) as exc:
        injector.crash_at("victim", 2.0, restart_after=3.0)
    assert "restart_fn" in str(exc.value)
    assert "victim" in str(exc.value)
    # nothing was scheduled: the run must not crash anyone
    sim.run()
    assert injector.crash_count() == 0


def test_crash_record_marks_restart_requested():
    sim = Simulator()
    injector = FailureInjector(sim)
    injector.attach(kill_fn=lambda p: None, restart_fn=lambda p: None)
    injector.crash_at("victim", 1.0, restart_after=2.0)
    injector.crash_at("other", 1.0)
    sim.run()
    by_name = {record.process: record for record in injector.crashes}
    assert by_name["victim"].restart_requested
    assert by_name["victim"].restarted
    assert "restarted" in repr(by_name["victim"])
    assert not by_name["other"].restart_requested
    # the requested-but-not-yet-restarted state is the repr's third face
    pending = CrashRecord("p", 1.0, restarted=False, restart_requested=True)
    assert "restart-requested" in repr(pending)
