"""Tests for task coroutines and the effect trampoline."""

import pytest

from repro.sim import (
    TIMED_OUT,
    Fork,
    GetTime,
    Halt,
    Network,
    Recv,
    Simulator,
    Task,
    TaskKilled,
    Timeout,
    UnknownEffectError,
)


def test_timeout_advances_virtual_time():
    sim = Simulator()
    times = []

    def body(env):
        times.append(env.now)
        yield Timeout(2.5)
        times.append(env.now)

    Task(sim, "t", body).start()
    sim.run()
    assert times == [0.0, 2.5]


def test_task_return_value_recorded():
    sim = Simulator()

    def body(env):
        yield Timeout(1.0)
        return 42

    task = Task(sim, "t", body).start()
    sim.run()
    assert task.done
    assert task.result == 42


def test_get_time_effect():
    sim = Simulator()
    seen = []

    def body(env):
        yield Timeout(3.0)
        now = yield GetTime()
        seen.append(now)

    Task(sim, "t", body).start()
    sim.run()
    assert seen == [3.0]


def test_recv_blocks_until_message():
    sim = Simulator()
    net = Network(sim)
    box = net.register("rx")
    got = []

    def receiver(env):
        msg = yield Recv(box)
        got.append((env.now, msg.payload))

    def sender(env):
        yield Timeout(5.0)
        net.send("tx", "rx", "hello")

    Task(sim, "rx", receiver).start()
    Task(sim, "tx", sender).start()
    sim.run()
    assert got == [(5.0, "hello")]


def test_recv_timeout_returns_sentinel():
    sim = Simulator()
    net = Network(sim)
    box = net.register("rx")
    got = []

    def receiver(env):
        msg = yield Recv(box, timeout=2.0)
        got.append(msg)

    Task(sim, "rx", receiver).start()
    sim.run()
    assert got == [TIMED_OUT]
    assert not got[0]


def test_recv_timeout_cancelled_when_message_wins():
    sim = Simulator()
    net = Network(sim)
    box = net.register("rx")
    got = []

    def receiver(env):
        msg = yield Recv(box, timeout=10.0)
        got.append(msg.payload)

    def sender(env):
        yield Timeout(1.0)
        net.send("tx", "rx", "fast")

    Task(sim, "rx", receiver).start()
    Task(sim, "tx", sender).start()
    sim.run()
    assert got == ["fast"]
    assert sim.now == 1.0  # the 10s timer did not hold the clock


def test_fork_spawns_child():
    sim = Simulator()
    log = []

    def child(env):
        yield Timeout(1.0)
        log.append("child")

    def parent(env):
        yield Fork("kid", child)
        log.append("parent")
        yield Timeout(5.0)

    Task(sim, "parent", parent).start()
    sim.run()
    assert log == ["parent", "child"]


def test_halt_terminates_immediately():
    sim = Simulator()
    log = []

    def body(env):
        log.append("before")
        yield Halt()
        log.append("after")  # pragma: no cover - must not run

    task = Task(sim, "t", body).start()
    sim.run()
    assert log == ["before"]
    assert task.done


def test_kill_while_waiting_runs_taskkilled_handler():
    sim = Simulator()
    witnessed = []

    def body(env):
        try:
            yield Timeout(100.0)
        except TaskKilled:
            witnessed.append("killed")
            raise

    task = Task(sim, "t", body).start()
    sim.schedule(1.0, task.kill)
    sim.run()
    assert witnessed == ["killed"]
    assert task.state == "killed"
    assert sim.now == 1.0


def test_kill_removes_mailbox_waiter():
    sim = Simulator()
    net = Network(sim)
    box = net.register("rx")

    def receiver(env):
        yield Recv(box)

    task = Task(sim, "rx", receiver).start()
    sim.schedule(1.0, task.kill)
    sim.run()
    # a later message must queue, not be handed to the dead task
    net.send("tx", "rx", "late")
    sim.run()
    assert len(box) == 1


def test_unknown_effect_raises():
    sim = Simulator()

    def body(env):
        yield object()

    Task(sim, "t", body).start()
    with pytest.raises(UnknownEffectError):
        sim.run()


def test_task_exception_propagates_and_marks_failed():
    sim = Simulator()

    def body(env):
        yield Timeout(1.0)
        raise ValueError("boom")

    task = Task(sim, "t", body).start()
    with pytest.raises(ValueError):
        sim.run()
    assert task.failed
    assert isinstance(task.error, ValueError)
