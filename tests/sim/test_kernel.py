"""Tests for the event-loop kernel."""

import pytest

from repro.sim import (
    EventLimitExceeded,
    ScheduleInPastError,
    Simulator,
)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for tag in ["first", "second", "third"]:
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ScheduleInPastError):
        sim.schedule(-0.1, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["a", "b"]


def test_until_is_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "edge")
    sim.run(until=2.0)
    assert fired == ["edge"]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_max_events_guards_livelock():
    sim = Simulator()

    def forever():
        sim.schedule(0.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(EventLimitExceeded):
        sim.run(max_events=100)


def test_stop_breaks_run_loop():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_schedule_at_absolute_time():
    sim = Simulator()
    seen = []
    sim.schedule_at(4.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.5]


def test_pending_events_and_peek():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    assert sim.peek_time() == 1.0
    e1.cancel()
    assert sim.pending_events == 1
    assert sim.peek_time() == 2.0


def test_step_executes_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False
    assert fired == ["a", "b"]


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_pending_events_counter_stays_exact():
    """pending_events is O(1) counter-maintained; it must agree with a
    heap scan through every schedule/cancel/execute combination."""
    sim = Simulator()
    events = [sim.schedule(float(i), lambda: None) for i in range(10)]
    assert sim.pending_events == 10
    events[0].cancel()
    events[0].cancel()  # idempotent: no double decrement
    assert sim.pending_events == 9
    events[5].cancel()
    assert sim.pending_events == 8
    sim.run(until=3.0)  # fires t=1,2,3 (t=0 was cancelled)
    assert sim.pending_events == 5
    sim.run()
    assert sim.pending_events == 0


def test_pending_events_exact_after_step():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    e = sim.schedule(2.0, lambda: None)
    e.cancel()
    sim.schedule(3.0, lambda: None)
    assert sim.pending_events == 2
    sim.step()
    assert sim.pending_events == 1
    sim.step()  # skips the cancelled event, fires t=3
    assert sim.pending_events == 0


def test_peek_time_skips_cancelled_run_of_heads():
    sim = Simulator()
    head = [sim.schedule(float(i), lambda: None) for i in range(5)]
    tail = sim.schedule(9.0, lambda: None)
    for e in head:
        e.cancel()
    assert sim.peek_time() == 9.0
    assert sim.pending_events == 1
    tail.cancel()
    assert sim.peek_time() is None
    assert sim.pending_events == 0


def test_peek_time_does_not_disturb_execution_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    assert sim.peek_time() == 1.0
    assert sim.peek_time() == 1.0  # repeated peeks are stable
    sim.run()
    assert fired == ["a", "b"]


def test_cancel_after_pop_is_harmless():
    """Cancelling an event that already fired must not skew the counter."""
    sim = Simulator()
    e = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.0)
    e.cancel()  # already executed: must not decrement again
    assert sim.pending_events == 1


# ----------------------------------------------------------------------
# heap compaction (cancel-heavy workloads)
# ----------------------------------------------------------------------
def test_heap_compaction_evicts_cancelled_majority():
    """When cancelled events outnumber live ones, the heap is rebuilt so
    push/pop stay O(log live) instead of O(log total)."""
    sim = Simulator()
    events = [sim.schedule(float(i), lambda: None) for i in range(200)]
    keep = events[::4]
    for e in events:
        if e not in keep:
            e.cancel()
    assert sim.heap_compactions >= 1
    assert sim.pending_events == len(keep)
    # The compaction threshold keeps cancelled entries a minority.
    assert len(sim._heap) <= 2 * sim.pending_events + 1


def test_heap_compaction_preserves_firing_order():
    sim = Simulator()
    fired = []
    events = []
    for i in range(300):
        events.append(sim.schedule(float(i % 7), fired.append, i))
    for i, e in enumerate(events):
        if i % 3:
            e.cancel()
    expected = sorted(
        (i for i in range(300) if i % 3 == 0),
        key=lambda i: (float(i % 7), i),
    )
    sim.run()
    assert fired == expected


def test_small_heaps_are_never_compacted():
    """Rebuilding a tiny heap costs more than lazy pops; below the size
    floor cancellation must leave the heap alone."""
    sim = Simulator()
    events = [sim.schedule(float(i), lambda: None) for i in range(20)]
    for e in events:
        e.cancel()
    assert sim.heap_compactions == 0


def test_compaction_counter_in_steady_cancel_churn():
    """Repeated schedule/cancel churn stays bounded: the heap never grows
    past ~2x the live population."""
    sim = Simulator()
    live = []
    for round_ in range(50):
        for _ in range(10):
            live.append(sim.schedule(1.0, lambda: None))
        while len(live) > 5:
            live.pop(0).cancel()
    assert len(sim._heap) <= max(2 * sim.pending_events, 64)
    assert sim.heap_compactions >= 1
