"""Tests for the event-loop kernel.

Generic behaviour is parametrized over all three event-queue kernels
(the binary heap, the hierarchical timer wheel, and the sorted window)
— they must be observationally identical.  Kernel-internal tests (heap
compaction, wheel buckets) pin their kernel explicitly.
"""

import pytest

from repro.sim import (
    EventLimitExceeded,
    ScheduleInPastError,
    SimulationError,
    Simulator,
)


@pytest.fixture(params=["heap", "wheel", "window"])
def sim(request):
    return Simulator(kernel=request.param)


def test_events_fire_in_time_order(sim):
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_schedule_order(sim):
    order = []
    for tag in ["first", "second", "third"]:
        sim.schedule(1.0, order.append, tag)
    sim.run()
    assert order == ["first", "second", "third"]


def test_negative_delay_rejected(sim):
    with pytest.raises(ScheduleInPastError):
        sim.schedule(-0.1, lambda: None)


def test_unknown_kernel_rejected():
    with pytest.raises(SimulationError):
        Simulator(kernel="splay")


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["a", "b"]


def test_until_is_inclusive(sim):
    fired = []
    sim.schedule(2.0, fired.append, "edge")
    sim.run(until=2.0)
    assert fired == ["edge"]


def test_events_scheduled_during_run_execute(sim):
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_max_events_guards_livelock(sim):
    def forever():
        sim.schedule(0.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(EventLimitExceeded):
        sim.run(max_events=100)


def test_stop_breaks_run_loop(sim):
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_schedule_at_absolute_time(sim):
    seen = []
    sim.schedule_at(4.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [4.5]


def test_pending_events_and_peek(sim):
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    assert sim.peek_time() == 1.0
    e1.cancel()
    assert sim.pending_events == 1
    assert sim.peek_time() == 2.0


def test_step_executes_one_event(sim):
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.step() is True
    assert sim.step() is False
    assert fired == ["a", "b"]


def test_events_processed_counter(sim):
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_pending_events_counter_stays_exact(sim):
    """pending_events is O(1) counter-maintained; it must agree with a
    queue scan through every schedule/cancel/execute combination."""
    events = [sim.schedule(float(i), lambda: None) for i in range(10)]
    assert sim.pending_events == 10
    events[0].cancel()
    events[0].cancel()  # idempotent: no double decrement
    assert sim.pending_events == 9
    events[5].cancel()
    assert sim.pending_events == 8
    sim.run(until=3.0)  # fires t=1,2,3 (t=0 was cancelled)
    assert sim.pending_events == 5
    sim.run()
    assert sim.pending_events == 0


def test_pending_events_exact_after_step(sim):
    sim.schedule(1.0, lambda: None)
    e = sim.schedule(2.0, lambda: None)
    e.cancel()
    sim.schedule(3.0, lambda: None)
    assert sim.pending_events == 2
    sim.step()
    assert sim.pending_events == 1
    sim.step()  # skips the cancelled event, fires t=3
    assert sim.pending_events == 0


def test_peek_time_skips_cancelled_run_of_heads(sim):
    head = [sim.schedule(float(i), lambda: None) for i in range(5)]
    tail = sim.schedule(9.0, lambda: None)
    for e in head:
        e.cancel()
    assert sim.peek_time() == 9.0
    assert sim.pending_events == 1
    tail.cancel()
    assert sim.peek_time() is None
    assert sim.pending_events == 0


def test_peek_time_does_not_disturb_execution_order(sim):
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    assert sim.peek_time() == 1.0
    assert sim.peek_time() == 1.0  # repeated peeks are stable
    sim.run()
    assert fired == ["a", "b"]


def test_cancel_after_pop_is_harmless(sim):
    """Cancelling an event that already fired must not skew the counter."""
    e = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.0)
    e.cancel()  # already executed: must not decrement again
    assert sim.pending_events == 1


def test_cancel_then_peek_keeps_counter_exact(sim):
    """Interleaved cancel/peek sequences: peek physically discards the
    cancelled events it skips, and the live counter never drifts."""
    events = [sim.schedule(float(i), lambda: None) for i in range(8)]
    assert sim.peek_time() == 0.0
    events[0].cancel()
    events[1].cancel()
    assert sim.peek_time() == 2.0
    assert sim.pending_events == 6
    events[3].cancel()  # buried behind the live head, discarded later
    assert sim.peek_time() == 2.0
    assert sim.pending_events == 5
    sim.run(until=4.0)  # fires t=2, 4 (t=3 cancelled)
    assert sim.pending_events == 3
    for e in events[5:]:
        e.cancel()
    assert sim.peek_time() is None
    assert sim.pending_events == 0


def test_schedule_after_until_break_preserves_order(sim):
    """Events scheduled between runs (after an until-break advanced the
    clock, which may have advanced the wheel cursor past `now`) still fire
    before previously queued later events."""
    fired = []
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=2.0)
    assert sim.now == 2.0
    sim.schedule(0.5, fired.append, "early")
    sim.call_soon(fired.append, "soon")
    sim.run()
    assert fired == ["soon", "early", "late"]


def test_interleaved_timescales_fire_in_order(sim):
    """Mixed near/far/fractional delays — exercises every wheel level and
    the overflow list; both kernels must agree with a sorted oracle."""
    fired = []
    delays = [
        0.03, 0.9, 1.0, 1.0625, 7.5, 63.9, 64.0, 100.0,
        4095.9, 4096.0, 70000.0, 262144.0, 1.0e6, 2.5e6,
    ]
    for i, d in enumerate(delays):
        sim.schedule(d, fired.append, i)
    sim.run()
    expected = sorted(range(len(delays)), key=lambda i: delays[i])
    assert fired == expected
    assert sim.now == max(delays)


# ----------------------------------------------------------------------
# queue compaction (cancel-heavy workloads) — behaviour common to both
# kernels; physical-size assertions pin the heap kernel.
# ----------------------------------------------------------------------
def test_heap_compaction_evicts_cancelled_majority():
    """When cancelled events outnumber live ones, the heap is rebuilt so
    push/pop stay O(log live) instead of O(log total)."""
    sim = Simulator(kernel="heap")
    events = [sim.schedule(float(i), lambda: None) for i in range(200)]
    keep = events[::4]
    for e in events:
        if e not in keep:
            e.cancel()
    assert sim.heap_compactions >= 1
    assert sim.pending_events == len(keep)
    # The compaction threshold keeps cancelled entries a minority.
    assert len(sim._heap) <= 2 * sim.pending_events + 1


def test_heap_compaction_preserves_firing_order(sim):
    fired = []
    events = []
    for i in range(300):
        events.append(sim.schedule(float(i % 7), fired.append, i))
    for i, e in enumerate(events):
        if i % 3:
            e.cancel()
    expected = sorted(
        (i for i in range(300) if i % 3 == 0),
        key=lambda i: (float(i % 7), i),
    )
    sim.run()
    assert fired == expected


def test_small_heaps_are_never_compacted(sim):
    """Rebuilding a tiny queue costs more than lazy drops; below the size
    floor cancellation must leave the queue alone."""
    events = [sim.schedule(float(i), lambda: None) for i in range(20)]
    for e in events:
        e.cancel()
    assert sim.heap_compactions == 0


def test_compaction_counter_in_steady_cancel_churn():
    """Repeated schedule/cancel churn stays bounded: the heap never grows
    past ~2x the live population."""
    sim = Simulator(kernel="heap")
    live = []
    for round_ in range(50):
        for _ in range(10):
            live.append(sim.schedule(1.0, lambda: None))
        while len(live) > 5:
            live.pop(0).cancel()
    assert len(sim._heap) <= max(2 * sim.pending_events, 64)
    assert sim.heap_compactions >= 1


# ----------------------------------------------------------------------
# timer-wheel internals
# ----------------------------------------------------------------------
def test_wheel_cancel_all_in_bucket():
    """Cancelling every event in a far bucket: the bucket is skipped
    without firing anything and the counters stay exact."""
    sim = Simulator(kernel="wheel")
    fired = []
    # one near event, a cluster sharing a single far bucket, one farther
    sim.schedule(1.0, fired.append, "near")
    cluster = [sim.schedule(500.0, fired.append, f"mid{i}") for i in range(8)]
    sim.schedule(900.0, fired.append, "far")
    for e in cluster:
        e.cancel()
    assert sim.pending_events == 2
    sim.run()
    assert fired == ["near", "far"]
    assert sim.pending_events == 0
    assert sim.peek_time() is None


def test_wheel_cancel_storm_triggers_sweep():
    """Mass-cancelling far-future events triggers the wheel sweep so dead
    entries don't accumulate (the analogue of heap compaction)."""
    sim = Simulator(kernel="wheel")
    events = [sim.schedule(float(i) * 3.7, lambda: None) for i in range(400)]
    for e in events[::2]:
        e.cancel()
    for e in events[1::2]:
        e.cancel()
    assert sim.heap_compactions >= 1
    # same bound as the heap kernel: dead entries never dominate above
    # the sweep floor
    assert len(sim._queue) <= max(2 * sim.pending_events, 64)
    assert sim.pending_events == 0


def test_wheel_sweep_preserves_order_and_counters():
    sim = Simulator(kernel="wheel")
    fired = []
    events = [sim.schedule(float(i % 97) * 1.3, fired.append, i) for i in range(500)]
    for i, e in enumerate(events):
        if i % 4 != 1:
            e.cancel()
    assert sim.heap_compactions >= 1
    assert sim.pending_events == sum(1 for i in range(500) if i % 4 == 1)
    expected = sorted(
        (i for i in range(500) if i % 4 == 1),
        key=lambda i: (float(i % 97) * 1.3, i),
    )
    sim.run()
    assert fired == expected


def test_wheel_overflow_rebase():
    """Events beyond the wheel horizon live in the overflow list and are
    re-bucketed (in order) once the near levels drain."""
    sim = Simulator(kernel="wheel")
    fired = []
    horizon = 0.0625 * (64 ** 4)  # resolution * 64^4 ticks
    sim.schedule(1.0, fired.append, "now")
    sim.schedule(horizon * 2.0, fired.append, "beyond2")
    sim.schedule(horizon * 1.5, fired.append, "beyond1")
    cancelled = sim.schedule(horizon * 1.75, fired.append, "dead")
    cancelled.cancel()
    sim.run()
    assert fired == ["now", "beyond1", "beyond2"]
    assert sim.pending_events == 0


def test_wheel_resolution_only_affects_performance():
    """Any positive resolution yields the same firing order."""
    orders = []
    for resolution in (0.0625, 1.0, 17.3, 1e-4):
        sim = Simulator(kernel="wheel", wheel_resolution=resolution)
        fired = []
        for i, d in enumerate([5.0, 0.1, 0.1, 3.3, 64.2, 0.0]):
            sim.schedule(d, fired.append, i)
        sim.run()
        orders.append(fired)
    assert all(o == orders[0] for o in orders)
    with pytest.raises(SimulationError):
        Simulator(kernel="wheel", wheel_resolution=0.0)
