"""Error paths and lifecycle edges of the task trampoline and kernel."""

import pytest

from repro.sim import (
    Fork,
    Recv,
    Network,
    SimulationError,
    Simulator,
    Task,
    TaskKilled,
    Timeout,
)


def test_double_start_rejected():
    sim = Simulator()

    def body(env):
        yield Timeout(1.0)

    task = Task(sim, "t", body).start()
    with pytest.raises(SimulationError):
        task.start()


def test_resume_while_not_waiting_rejected():
    sim = Simulator()

    def body(env):
        yield Timeout(1.0)

    task = Task(sim, "t", body)
    with pytest.raises(SimulationError):
        task.resume("early")


def test_resume_with_pending_event_rejected():
    sim = Simulator()

    def body(env):
        yield Timeout(5.0)

    task = Task(sim, "t", body).start()
    sim.run(until=0.0)                     # started, now sleeping
    with pytest.raises(SimulationError):
        task.resume("duplicate")


def test_kill_idempotent_and_dead_tasks_stay_dead():
    sim = Simulator()

    def body(env):
        yield Timeout(10.0)

    task = Task(sim, "t", body).start()
    sim.run(until=1.0)
    task.kill()
    task.kill()                            # second kill is a no-op
    assert task.state == "killed"
    sim.run()
    assert not task.alive


def test_kill_before_first_step():
    sim = Simulator()
    ran = []

    def body(env):
        ran.append(True)
        yield Timeout(1.0)

    task = Task(sim, "t", body).start()
    task.kill()                            # before the start event fires
    sim.run()
    assert ran == []
    assert task.state == "killed"


def test_task_swallowing_taskkilled_does_not_crash_kernel():
    sim = Simulator()

    def stubborn(env):
        try:
            yield Timeout(100.0)
        except TaskKilled:
            pass                           # refuses to re-raise
        # generator ends here anyway (close() after throw)

    task = Task(sim, "t", stubborn).start()
    sim.run(until=1.0)
    task.kill()
    sim.run()
    assert task.state == "killed"


def test_forked_child_inherits_handler():
    sim = Simulator()
    seen = []

    calls = []

    def handler(task, effect):
        calls.append((task.name, type(effect).__name__))
        from repro.sim import default_effect_handler

        default_effect_handler(task, effect)

    def child(env):
        yield Timeout(1.0)
        seen.append("child-done")

    def parent(env):
        yield Fork("kid", child)
        yield Timeout(2.0)

    Task(sim, "parent", parent, handler=handler).start()
    sim.run()
    assert "child-done" in seen
    assert ("kid", "Timeout") in calls


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_env_properties():
    sim = Simulator()
    observed = {}

    def body(env):
        observed["name"] = env.name
        yield Timeout(3.0)
        observed["now"] = env.now

    Task(sim, "proc-7", body).start()
    sim.run()
    assert observed == {"name": "proc-7", "now": 3.0}


def test_return_value_of_halted_task_is_none():
    from repro.sim import Halt

    sim = Simulator()

    def body(env):
        yield Halt()
        return 42                          # pragma: no cover - unreachable

    task = Task(sim, "t", body).start()
    sim.run()
    assert task.done
    assert task.result is None
