"""Byte-identity regression matrix for the round-2 hot-path work.

The round-2 optimizations (window kernel, same-tick coalescing,
``__slots__``/pre-bound-constructor frame cuts, reusable recv waiters)
all promise the same thing: faster, but byte-identical.  This module is
the standing tripwire for that promise — every cell of
seeds × engine modes × kernels must produce the same trace fingerprint,
and a faulted chaos case must agree across all three kernels too.

``test_wheel_kernel.py`` proves wheel == heap; this matrix adds the
``window`` kernel and pins the *pairwise-all-equal* property in one
assert per cell, so any future hot-path lever that skews ordering in
any mode fails here with the exact (seed, mode) coordinate.
"""

import pytest

from repro.bench.workloads import build_chaos_mesh, build_chaos_ring
from repro.chaos import WORKLOADS, run_case, standard_plans
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency, Tracer

KERNELS = ("heap", "wheel", "window")

ENGINE_MODES = {
    "plain": {},
    "fossil": {"fossil_collect": True, "fossil_interval": 4},
    "fast-rollback": {"fast_rollback": True},
    "fossil+fast": {
        "fossil_collect": True,
        "fossil_interval": 4,
        "fast_rollback": True,
    },
}


def _fingerprint(kernel: str, build, seed: int, **system_kw) -> str:
    tracer = Tracer()
    system = HopeSystem(
        seed=seed,
        latency=ConstantLatency(1.0),
        trace=tracer,
        kernel=kernel,
        **system_kw,
    )
    build(system)
    system.run(max_events=200_000)
    return tracer.fingerprint()


@pytest.mark.parametrize("mode", sorted(ENGINE_MODES))
@pytest.mark.parametrize("seed", [0, 3, 11])
@pytest.mark.parametrize("build", [build_chaos_mesh, build_chaos_ring])
def test_fingerprints_identical_across_all_kernels(build, seed, mode):
    kw = ENGINE_MODES[mode]
    prints = {k: _fingerprint(k, build, seed, **kw) for k in KERNELS}
    assert len(set(prints.values())) == 1, (seed, mode, prints)


@pytest.mark.parametrize("seed", [1, 2])
def test_storm_fault_plan_identical_across_all_kernels(seed):
    """One chaos fault plan (drop + dup + reorder + jitter all at once):
    the faulted delivery paths — retraction, duplication, the reorder
    jitter draws — must consume the seeded streams identically under
    every kernel."""
    wl_name = sorted(WORKLOADS)[0]
    wl = WORKLOADS[wl_name]
    plan = standard_plans(wl_name)["storm"]
    results = {
        k: run_case(wl, seed, plan, plan_name="storm", kernel=k) for k in KERNELS
    }
    for kernel, result in results.items():
        assert result.ok, (kernel, result.failure)
    assert len({r.fingerprint for r in results.values()}) == 1
    assert len({tuple(sorted(r.committed.items())) for r in results.values()}) == 1
