"""Hypothesis over the mailbox: no message is lost, duplicated, or
delivered out of FIFO order, under random interleavings of producers,
selective consumers, and requeues."""

from hypothesis import given, settings, strategies as st

from repro.sim import ConstantLatency, Network, Recv, Simulator, Task


@settings(max_examples=100, deadline=None)
@given(
    payloads=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=20),
    consumer_count=st.integers(min_value=1, max_value=3),
)
def test_conservation_across_competing_consumers(payloads, consumer_count):
    sim = Simulator()
    net = Network(sim, ConstantLatency(1.0))
    box = net.register("rx")
    got = []
    remaining = {"n": len(payloads)}

    def consumer(env, cid):
        while remaining["n"] > 0:
            msg = yield Recv(box, timeout=50.0)
            from repro.sim import TIMED_OUT

            if msg is TIMED_OUT:
                return
            remaining["n"] -= 1
            got.append((cid, msg.payload))

    for cid in range(consumer_count):
        Task(sim, f"c{cid}", consumer, cid).start()
    for value in payloads:
        net.send("tx", "rx", value)
    sim.run()
    # conservation: every payload delivered exactly once
    assert sorted(v for _c, v in got) == sorted(payloads)
    assert len(box) == 0


@settings(max_examples=100, deadline=None)
@given(
    payloads=st.lists(
        st.tuples(st.booleans(), st.integers(0, 99)),
        min_size=1,
        max_size=15,
    )
)
def test_predicate_consumers_only_get_matches(payloads):
    sim = Simulator()
    net = Network(sim, ConstantLatency(1.0))
    box = net.register("rx")
    wanted = [v for flag, v in payloads if flag]
    got = []

    def picky(env):
        for _ in wanted:
            msg = yield Recv(box, predicate=lambda m: m.payload[0])
            got.append(msg.payload[1])

    Task(sim, "picky", picky).start()
    for item in payloads:
        net.send("tx", "rx", item)
    sim.run()
    assert got == wanted                     # matches, in FIFO order
    leftovers = [m.payload[1] for m in box.peek_all()]
    assert leftovers == [v for flag, v in payloads if not flag]


@settings(max_examples=60, deadline=None)
@given(
    first=st.lists(st.integers(0, 99), min_size=1, max_size=8),
    second=st.lists(st.integers(0, 99), max_size=8),
)
def test_requeue_preserves_order_ahead_of_new_arrivals(first, second):
    sim = Simulator()
    net = Network(sim, ConstantLatency(0.0))
    box = net.register("rx")
    for v in first:
        net.send("tx", "rx", v)
    sim.run()
    messages = box.peek_all()
    box._queue.clear()                       # simulate un-receiving them
    for v in second:
        net.send("tx", "rx", v)
    sim.run()
    box.requeue_front(messages)
    order = [m.payload for m in box.peek_all()]
    assert order == first + second
