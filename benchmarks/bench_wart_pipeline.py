"""Ablation: verification parallelism (WorryWart pool size).

A design choice DESIGN.md calls out: one WorryWart serializes
verification at an S1 round trip per report; when the worker streams
faster than verification completes, S3s overtake queued S1s and the
Order assumption fails under load.  The sweep shows the three regimes —
backlogged (rollback storms), balanced, and fully pipelined — and that
correctness holds in all of them.
"""

from repro.apps.call_streaming import run_optimistic, run_pessimistic
from repro.bench import emit, format_table, streaming_config, sweep

WARTS = [1, 2, 4, 8, 16, 20]
N_REPORTS = 20
LATENCY = 25.0


def run_warts(n_warts: int) -> dict:
    config = streaming_config(
        n_reports=N_REPORTS, latency=LATENCY, n_warts=n_warts
    )
    opt = run_optimistic(config)
    pess = run_pessimistic(config)
    assert opt.server_output == pess.server_output
    return {
        "makespan": opt.makespan,
        "rollbacks": opt.rollbacks,
        "wasted": opt.wasted_time,
        "gain_pct": 100 * (pess.makespan - opt.makespan) / pess.makespan,
    }


def test_wart_pipeline_ablation(benchmark):
    result = sweep("warts", WARTS, run_warts)
    metrics = ["makespan", "rollbacks", "wasted", "gain_pct"]
    emit(
        "wart_pipeline",
        format_table(
            f"ABLATION — WorryWart pool size ({N_REPORTS} reports, latency {LATENCY})",
            result.headers(metrics),
            result.rows(metrics),
        ),
    )
    rollbacks = result.column("rollbacks")
    gains = result.column("gain_pct")
    # backlogged regime really has failures; pipelined regime has none
    assert rollbacks[0] > 0
    assert rollbacks[-1] == 0
    # more verification parallelism never hurts
    assert result.column("makespan")[-1] <= result.column("makespan")[0]
    assert gains[-1] > gains[0]
    benchmark(lambda: run_warts(4))
