"""Experiment TW: HOPE expressing Time Warp's one assumption (§2).

The same timestamp-ordered workload runs three ways:

* the **sequential oracle** (ground truth);
* genuine **Time Warp** (anti-messages, GVT) on the physical network;
* **HOPE**, with the arrival-order assumption spelled out as AIDs
  (:mod:`repro.apps.virtual_time`).

Both optimistic systems must match the oracle's final state; the table
compares their rollback behaviour and message costs as physical jitter
grows (more jitter ⇒ more stragglers).
"""

from repro.apps.virtual_time import run_hope_order
from repro.baselines.timewarp import Emission, SequentialOracle, TimeWarpEngine
from repro.bench import emit, format_table, sweep, vt_workload
from repro.sim import RandomStreams, UniformLatency

JITTERS = [0.0, 2.0, 5.0, 10.0]
N_SENDERS = 3
JOBS = 8


def _latency(jitter: float, seed: int):
    if jitter == 0.0:
        from repro.sim import ConstantLatency

        return ConstantLatency(1.0)
    return UniformLatency(0.5, 0.5 + jitter, RandomStreams(seed)["tw-net"])


def _tw_handler(state, vt, payload):
    """Fold incoming jobs exactly like apps.virtual_time.fold."""
    from repro.apps.virtual_time import fold

    state["acc"] = fold(state["acc"], vt, payload)
    return []


def run_jitter(jitter: float) -> dict:
    workload = vt_workload(N_SENDERS, JOBS)
    # --- HOPE ---
    hope = run_hope_order(workload, latency=_latency(jitter, 1), seed=1)
    assert hope.final_state == workload.reference_state()
    # --- Time Warp: senders are LPs injecting to a sink LP ---
    engine = TimeWarpEngine(latency=_latency(jitter, 1), service_time=0.2)
    engine.add_lp("sink", _tw_handler, {"acc": 0})
    for stream in workload.streams:
        for job in stream:
            engine.inject("sink", job.vt, job.value)
    engine.run(max_events=1_000_000)
    tw_stats = engine.stats()
    # --- oracle ---
    oracle = SequentialOracle()
    oracle.add_lp("sink", _tw_handler, {"acc": 0})
    for stream in workload.streams:
        for job in stream:
            oracle.inject("sink", job.vt, job.value)
    oracle.run()
    assert engine.lps["sink"].state == oracle.states["sink"]
    return {
        "hope_rollbacks": hope.rollbacks,
        "tw_rollbacks": tw_stats["rollbacks"],
        "hope_msgs": hope.messages,
        "tw_msgs": tw_stats["messages"],
        "tw_efficiency": tw_stats["efficiency"],
        "hope_makespan": hope.makespan,
    }


def test_timewarp_comparison(benchmark):
    result = sweep("jitter", JITTERS, run_jitter)
    metrics = [
        "hope_rollbacks",
        "tw_rollbacks",
        "hope_msgs",
        "tw_msgs",
        "tw_efficiency",
        "hope_makespan",
    ]
    emit(
        "timewarp",
        format_table(
            "TW — HOPE-expressed message-order optimism vs Time Warp "
            f"({N_SENDERS} senders x {JOBS} jobs)",
            result.headers(metrics),
            result.rows(metrics),
        ),
    )
    # zero jitter: neither system rolls back
    assert result.column("hope_rollbacks")[0] == 0
    assert result.column("tw_rollbacks")[0] == 0
    # high jitter: both must exercise their rollback machinery
    assert result.column("hope_rollbacks")[-1] > 0
    assert result.column("tw_rollbacks")[-1] > 0
    assert all(0 < e <= 1 for e in result.column("tw_efficiency"))
    benchmark(lambda: run_jitter(5.0))


def _run_cancellation(mode: str) -> dict:
    """A relay pipeline whose outputs are mostly straggler-insensitive —
    the workload lazy cancellation was invented for."""
    from repro.baselines.timewarp import Emission
    from repro.sim import SequenceLatency

    def relay_handler(state, vt, payload):
        state["seen"] += 1
        if payload > 0:
            return [Emission(state["next"], 1.5, payload - 1)]
        return []

    engine = TimeWarpEngine(
        latency=SequenceLatency([40.0] + [1.0] * 500),
        service_time=0.2,
        cancellation=mode,
    )
    for index, name in enumerate(["a", "b", "c"]):
        nxt = ["a", "b", "c"][(index + 1) % 3]
        engine.add_lp(name, relay_handler, {"seen": 0, "next": nxt})
    engine.inject("a", 1.0, 10)             # slow: the eventual straggler
    engine.inject("a", 5.0, 10)             # fast: speculated on first
    engine.run(max_events=500_000)
    stats = engine.stats()
    lazy_hits = sum(lp.lazy_hits for lp in engine.lps.values())
    return {
        "antis": stats["antis_sent"],
        "messages": stats["messages"],
        "lazy_hits": lazy_hits,
        "events_rolled_back": stats["events_rolled_back"],
    }


def test_cancellation_ablation(benchmark):
    from repro.bench import emit as emit_table

    rows = []
    results = {}
    for mode in ("aggressive", "lazy"):
        metrics = _run_cancellation(mode)
        results[mode] = metrics
        rows.append([mode] + list(metrics.values()))
    emit_table(
        "timewarp_cancellation",
        format_table(
            "TW — aggressive vs lazy cancellation (straggler-insensitive relay)",
            ["mode", "antis", "messages", "lazy_hits", "events_rolled_back"],
            rows,
        ),
    )
    assert results["lazy"]["antis"] <= results["aggressive"]["antis"]
    assert results["lazy"]["lazy_hits"] > 0
    assert results["lazy"]["messages"] <= results["aggressive"]["messages"]
    benchmark(lambda: _run_cancellation("lazy"))
