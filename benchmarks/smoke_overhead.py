"""CI smoke: fail if HOPE-vs-bare wall overhead regresses past the budget.

Five checks: the CASCADE partial-replay property (deterministic — fast
rollback must replay fewer entries than full replay at depth 32), the
FOSSIL memory budget (peak RSS growth of a fossil-collected 100k-event
run must stay within ``max_fossil_rss_delta_kib``), the METRICS budget
(traces byte-identical with metrics off/null/metered, and the metered
ping-pong within ``max_metrics_overhead_ratio`` of the plain one), the
EVSEC throughput floor (the wheel kernel's worst events/sec across the
chain/fanout/cancel shapes must stay above ``min_events_per_sec``),
then the TRACK wall-clock budget.  The TRACK half runs the ping-pong point at
the message count stored in
``overhead_threshold.json`` and compares the measured
``hope_wall / bare_wall`` ratio against ``max_overhead_ratio``.  Wall
times are min-of-``repeats`` (noise-robust); the whole measurement is
retried up to ``attempts`` times and the best ratio is judged, so a
single contended CI moment cannot fail the build — a real regression
fails every attempt.

Usage::

    PYTHONPATH=src python benchmarks/smoke_overhead.py
"""

import importlib.util
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))


def _load_bench(name: str):
    path = os.path.join(HERE, f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _check_cascade() -> int:
    """Deterministic half of the smoke: partial replay must stay partial.

    At depth 32 the full-replay cascade re-feeds every process's entire
    pre-guess prefix; ``fast_rollback=True`` must replay strictly fewer
    entries (in fact zero — rollback never rewinds to log index 0).
    """
    cascade = _load_bench("bench_rollback_cascade")
    point = cascade.chain_metrics(32)
    print(
        f"cascade depth 32: full replay {point['replayed_effects']} entries, "
        f"fast {point['fast_replayed']} (skipped {point['fast_skipped']})"
    )
    if point["fast_replayed"] >= point["replayed_effects"]:
        print("FAIL: checkpointed replay no longer skips the logged prefix")
        return 1
    return 0


def _check_memory(budget: dict) -> int:
    """FOSSIL half of the smoke: long runs must hold memory flat.

    Runs the fossil-collected steady-state workload over the budgeted
    event horizon and compares the peak resident-set growth against
    ``max_fossil_rss_delta_kib``.  The uncollected twin grows by hundreds
    of KiB per 10k events, so any regression that stops collection from
    reclaiming (a new pin leak, a frontier that stops advancing) blows
    the budget immediately.
    """
    fossil = _load_bench("bench_fossil_steady")
    limit = budget["max_fossil_rss_delta_kib"]
    # RSS growth is allocator- and box-dependent; best-of-attempts like
    # the TRACK check, so one noisy allocation spike cannot fail the
    # build while a real pin leak blows the budget on every attempt.
    best = None
    for attempt in range(budget.get("attempts", 3)):
        result = fossil.run_horizon(True, events_total=budget["fossil_events"])
        peak = result["peak_rss_delta_kib"]
        stats = result["stats"]
        print(
            f"fossil steady-state {budget['fossil_events']} events "
            f"(attempt {attempt + 1}): "
            f"peak RSS delta {peak} KiB (budget {limit}), "
            f"{stats['fossil_collections']} collections, "
            f"{stats['fossil_log_dropped']} log entries dropped"
        )
        if not stats["fossil_collections"] or not stats["fossil_log_dropped"]:
            print("FAIL: fossil collection never reclaimed anything")
            return 1
        best = peak if best is None else min(best, peak)
        if best <= limit:
            break
    if best is None or best > limit:
        print(f"FAIL: fossil-collected peak RSS delta {best} KiB "
              f"best-of-attempts exceeds budget {limit}")
        return 1
    return 0


def _check_metrics(budget: dict) -> int:
    """METRICS half: observability must be free when off, cheap when on.

    Disabled path: a run handed a ``NullRegistry`` subscribes no machine
    listener, so its trace must be byte-identical to a metrics-off run —
    and so must a *metered* run, whose listener only reads.  Checked on a
    rollback-heavy call-streaming workload via trace fingerprints.
    Enabled path: wall time of the speculative ping-pong with a live
    registry vs the default (NullRegistry) must stay under
    ``max_metrics_overhead_ratio``; min-of-repeats and best-of-attempts,
    like the TRACK check.
    """
    from repro.apps.call_streaming import run_optimistic
    from repro.bench import probabilistic_config
    from repro.obs import MetricsRegistry, NullRegistry
    from repro.sim import Tracer

    config = probabilistic_config(n_reports=8, success_probability=0.5)
    t_off, t_null, t_on = Tracer(), Tracer(), Tracer()
    run_optimistic(config, trace=t_off)
    run_optimistic(config, trace=t_null, metrics=NullRegistry())
    run_optimistic(config, trace=t_on, metrics=MetricsRegistry())
    if t_off.format() != t_null.format() or t_off.fingerprint() != t_null.fingerprint():
        print("FAIL: NullRegistry run's trace differs from the metrics-off run")
        return 1
    if t_off.fingerprint() != t_on.fingerprint():
        print("FAIL: metered run's trace differs from the metrics-off run")
        return 1
    print(f"metrics: traces byte-identical across off/null/metered runs "
          f"({len(t_off)} records)")

    bench = _load_bench("bench_tracking_overhead")
    n = budget["messages"]
    repeats = budget.get("repeats", 5)
    limit = budget["max_metrics_overhead_ratio"]
    best = None
    for attempt in range(budget.get("attempts", 3)):
        plain_s = min(
            bench._hope_pingpong(n, speculative=True)["wall_s"]
            for _ in range(repeats)
        )
        metered_s = min(
            bench._hope_pingpong(n, speculative=True, metrics=MetricsRegistry())[
                "wall_s"
            ]
            for _ in range(repeats)
        )
        ratio = metered_s / plain_s
        best = ratio if best is None else min(best, ratio)
        print(
            f"metrics attempt {attempt + 1}: metered {1000 * metered_s:.2f} ms / "
            f"plain {1000 * plain_s:.2f} ms = {ratio:.2f} (budget {limit})"
        )
        if best <= limit:
            break
    if best is None or best > limit:
        print(f"FAIL: metrics overhead ratio {best:.2f} exceeds budget {limit}")
        return 1
    print(f"OK: metrics overhead ratio {best:.2f} within budget {limit}")
    return 0


def _check_throughput(budget: dict) -> int:
    """EVSEC half: the wheel kernel must keep its events/sec floor.

    Runs the three scheduling shapes from ``bench_events_per_sec`` and
    judges the *worst* shape's wheel-kernel throughput against
    ``min_events_per_sec``; best-of-attempts like the TRACK check.  The
    floor is an order of magnitude below the measured numbers — it
    catches a complexity regression (a wheel degenerating into linear
    scans), not a slow CI box.
    """
    evsec = _load_bench("bench_events_per_sec")
    n = budget.get("evsec_events", 20000)
    floor = budget["min_events_per_sec"]
    best = None
    for attempt in range(budget.get("attempts", 3)):
        points = {
            shape: evsec.run_point(shape, n=n, repeats=budget.get("repeats", 5))
            for shape in sorted(evsec.SHAPES)
        }
        worst_shape = min(points, key=lambda s: points[s]["wheel_kev_s"])
        worst = 1000 * points[worst_shape]["wheel_kev_s"]
        best = worst if best is None else max(best, worst)
        detail = ", ".join(
            f"{shape} {1000 * p['wheel_kev_s']:,.0f} ev/s ({p['speedup']:.2f}x heap)"
            for shape, p in sorted(points.items())
        )
        print(
            f"evsec attempt {attempt + 1}: {detail}; "
            f"worst {worst:,.0f} ev/s (floor {floor:,})"
        )
        if best >= floor:
            break
    if best is None or best < floor:
        print(f"FAIL: wheel kernel throughput {best:,.0f} ev/s below floor {floor:,}")
        return 1
    print(f"OK: wheel kernel worst-shape throughput {best:,.0f} ev/s above floor {floor:,}")
    return 0


def main() -> int:
    with open(os.path.join(HERE, "overhead_threshold.json"), encoding="utf-8") as fh:
        budget = json.load(fh)
    if _check_cascade():
        return 1
    if _check_memory(budget):
        return 1
    if _check_metrics(budget):
        return 1
    if _check_throughput(budget):
        return 1
    bench = _load_bench("bench_tracking_overhead")
    n = budget["messages"]
    limit = budget["max_overhead_ratio"]
    best = None
    for attempt in range(budget.get("attempts", 3)):
        point = bench.run_point(n, repeats=budget.get("repeats", 5))
        ratio = point["overhead_ratio"]
        best = ratio if best is None else min(best, ratio)
        print(
            f"attempt {attempt + 1}: hope {point['hope_wall_ms']:.2f} ms / "
            f"bare {point['bare_wall_ms']:.2f} ms = {ratio:.2f} "
            f"(budget {limit})"
        )
        if best <= limit:
            break
    if best is None or best > limit:
        print(f"FAIL: overhead ratio {best:.2f} exceeds budget {limit}")
        return 1
    print(f"OK: overhead ratio {best:.2f} within budget {limit}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
