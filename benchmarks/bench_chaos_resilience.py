"""Experiment CHAOS: what a lossy network costs an optimistic runtime.

Sweeps per-message drop rate over the chaos mesh workload with reliable
delivery enabled and measures what degrades: completion time, mean
commit latency (guess -> resolution, from the ``hope_commit_latency``
histogram), wasted-work ratio, and the retry traffic that bridges the
losses.  Every point also re-asserts the robustness contract — the
committed state must equal the fault-free twin's whatever the drop rate,
because reliable delivery + rollback make loss a *performance* event,
never a *correctness* one.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos_resilience.py
"""

from repro.bench import emit, emit_json, format_table, sweep
from repro.bench.workloads import build_chaos_mesh
from repro.chaos import committed_state
from repro.obs import MetricsRegistry
from repro.runtime import HopeSystem, ReliableConfig
from repro.sim import ConstantLatency, FaultPlan, LinkFaults
from repro.verify.invariants import attach_monitors, check_quiescent

DROP_RATES = [0.0, 0.02, 0.05, 0.1, 0.2]
SEEDS = [1, 2, 3, 4, 5]
WORKERS = 4
ROUNDS = 4
MAX_EVENTS = 500_000


def _run_once(seed: int, drop: float) -> HopeSystem:
    plan = FaultPlan(default=LinkFaults(drop=drop)) if drop > 0 else None
    system = HopeSystem(
        seed=seed,
        latency=ConstantLatency(1.0),
        faults=plan,
        reliable=ReliableConfig(ack_timeout=5.0),
        metrics=MetricsRegistry(),
    )
    attach_monitors(system)
    build_chaos_mesh(system, workers=WORKERS, rounds=ROUNDS)
    system.run(max_events=MAX_EVENTS)
    check_quiescent(system)
    return system


def drop_point(drop: float) -> dict:
    """One sweep point, averaged over the seed set."""
    finals, commit_means, wasted_ratios, retries, rollbacks = [], [], [], [], []
    for seed in SEEDS:
        system = _run_once(seed, drop)
        if drop > 0:
            twin = _run_once(seed, 0.0)
            if committed_state(system) != committed_state(twin):
                raise AssertionError(
                    f"committed state diverged from fault-free twin "
                    f"(seed={seed}, drop={drop})"
                )
        stats = system.stats()
        snapshot = system.metrics_snapshot().snapshot()
        latency = snapshot["hope_commit_latency"]
        finals.append(system.sim.now)
        commit_means.append(
            latency["sum"] / latency["count"] if latency["count"] else 0.0
        )
        busy, wasted = stats["busy_time"], stats["wasted_time"]
        wasted_ratios.append(wasted / (busy + wasted) if busy + wasted else 0.0)
        retries.append(stats.get("reliable", {}).get("retries", 0))
        rollbacks.append(stats["rollbacks"])
    n = len(SEEDS)
    return {
        "final_time": sum(finals) / n,
        "commit_latency_mean": sum(commit_means) / n,
        "wasted_ratio": sum(wasted_ratios) / n,
        "retries": sum(retries) / n,
        "rollbacks": sum(rollbacks) / n,
    }


def main() -> None:
    result = sweep("drop_rate", DROP_RATES, drop_point)
    metrics = [
        "final_time",
        "commit_latency_mean",
        "wasted_ratio",
        "retries",
        "rollbacks",
    ]
    table = format_table(
        f"CHAOS: drop-rate sweep, mesh {WORKERS}x{ROUNDS}, "
        f"reliable delivery, {len(SEEDS)} seeds averaged "
        "(twin equality asserted at every faulty point)",
        result.headers(metrics),
        result.rows(metrics),
    )
    emit("bench_chaos_resilience", table)
    emit_json(
        "BENCH_CHAOS",
        "drop_rate_sweep",
        {
            "workers": WORKERS,
            "rounds": ROUNDS,
            "seeds": SEEDS,
            "parameter": result.parameter,
            "values": result.values,
            "series": result.series,
        },
    )


if __name__ == "__main__":
    main()
