"""Experiment FOSSIL: bounded memory and flat cost on long runs.

A steady-state worker/judge pair runs a 100k-event horizon in 10k-event
segments.  Per segment we sample wall time, resident-set size, and the
sizes of every table fossil collection targets (machine history, AID
table, effect log).  Two runs of the *same seeded program*:

* ``fossil_collect=False`` — every table grows monotonically and late
  rollbacks replay ever-longer prefixes;
* ``fossil_collect=True`` — the commit frontier passes each round's
  ``commit_point``, so tables stay bounded and per-segment cost is flat.

The runs must also be *observationally identical*: a streaming SHA-256
over every trace record is compared across the two modes.  Results are
persisted to ``benchmarks/results/fossil_steady.txt`` and the
machine-readable ``BENCH_2.json`` at the repo root.

``run_horizon`` is imported by ``smoke_overhead.py`` for the CI memory
budget, so keep its signature stable.
"""

import gc
import hashlib
import os
import time

from repro.bench import emit, emit_json, format_table
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency, Tracer

#: CI can shrink the horizon (FOSSIL_BENCH_EVENTS=50000) — the uncollected
#: run replays quadratically, which is the point but also the cost.
EVENTS_TOTAL = int(os.environ.get("FOSSIL_BENCH_EVENTS", "100000"))
SEGMENT = 10_000
DENY_RATE = 0.25
FOSSIL_INTERVAL = 32


def _rss_kib() -> int:
    """Current resident set size in KiB (Linux; 0 where unavailable)."""
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    return 0


# ---------------------------------------------------------------- workload
def _worker(p, resume=None):
    state = resume if resume is not None else {"round": 0, "acc": 0}
    while True:
        a = yield p.aid_init(f"r{state['round']}")
        yield p.send("judge", a)
        if (yield p.guess(a)):
            yield p.compute(1.0)
            state["acc"] += 3
        else:
            yield p.compute(2.0)
            state["acc"] -= 1
        state["round"] += 1
        yield p.commit_point(state)


def _judge(p, deny_rate, resume=None):
    state = resume if resume is not None else {"seen": 0}
    while True:
        msg = yield p.recv()
        yield p.compute(0.3)
        if (yield p.random()) < deny_rate:
            yield p.deny(msg.payload)
        else:
            yield p.affirm(msg.payload)
        state["seen"] += 1
        yield p.commit_point(state)


def run_horizon(
    fossil: bool,
    events_total: int = EVENTS_TOTAL,
    segment: int = SEGMENT,
    seed: int = 0,
) -> dict:
    """Drive the steady-state pair for ``events_total`` sim events.

    Returns per-segment samples plus a run summary, including a
    streaming digest of the full trace (identical digests ⇒ identical
    behaviour across fossil modes).
    """
    digest = hashlib.sha256()
    tracer = Tracer(max_records=1)  # stream to the digest, retain nothing
    tracer.subscribe(
        lambda rec: digest.update(repr(rec.as_tuple()).encode("utf-8"))
    )
    system = HopeSystem(
        seed=seed,
        latency=ConstantLatency(1.0),
        trace=tracer,
        fossil_collect=fossil,
        fossil_interval=FOSSIL_INTERVAL,
    )
    system.spawn("judge", _judge, DENY_RATE)
    system.spawn("worker", _worker)
    machine = system.machine
    worker = system.procs["worker"]
    segments = []
    gc.collect()
    rss_start = _rss_kib()
    for _ in range(events_total // segment):
        start = time.perf_counter()
        for _ in range(segment):
            if not system.sim.step():  # pragma: no cover - never idles
                break
        wall = time.perf_counter() - start
        gc.collect()
        segments.append(
            {
                "events": system.sim.events_processed,
                "wall_s": round(wall, 4),
                "rss_kib": _rss_kib(),
                "rss_delta_kib": _rss_kib() - rss_start,
                "history_rows": sum(
                    len(r.history) for r in machine.processes.values()
                ),
                "aid_table": len(machine.aids),
                "log_entries": len(worker.log.entries),
                "depset_table": len(machine.depsets),
            }
        )
    machine.check_invariants()
    stats = system.stats()
    return {
        "fossil": fossil,
        "digest": digest.hexdigest(),
        "segments": segments,
        "peak_rss_delta_kib": max(s["rss_delta_kib"] for s in segments),
        "stats": {
            key: stats[key]
            for key in (
                "rollbacks",
                "guesses",
                "aids_affirmed",
                "aids_denied",
                "replayed_effects",
                "fossil_collections",
                "fossil_history_dropped",
                "fossil_aids_retired",
                "fossil_log_dropped",
                "heap_compactions",
            )
        },
    }


def test_fossil_steady_state(benchmark):
    collected = run_horizon(True)
    uncollected = run_horizon(False)

    # observational equivalence: byte-identical traces
    assert collected["digest"] == uncollected["digest"]
    for key in ("rollbacks", "guesses", "aids_affirmed", "aids_denied"):
        assert collected["stats"][key] == uncollected["stats"][key], key

    seg_c, seg_u = collected["segments"], uncollected["segments"]

    # uncollected: every table grows monotonically, segment over segment
    for metric in ("history_rows", "aid_table", "log_entries", "depset_table"):
        series = [s[metric] for s in seg_u]
        assert series == sorted(series) and series[-1] > series[0], metric

    # collected: tables stay bounded.  The sim is fully deterministic, so
    # the series are exactly reproducible; the caps leave an order of
    # magnitude of slack over the observed steady-state oscillation
    # (10-160 rows at fossil_interval=32) while sitting far below where
    # the uncollected run lands after even one segment.
    caps = {"history_rows": 1000, "aid_table": 500,
            "log_entries": 1000, "depset_table": 500}
    for metric, cap in caps.items():
        peak = max(s[metric] for s in seg_c)
        assert peak <= cap, (metric, peak)
        assert seg_c[-1][metric] < seg_u[-1][metric] / 10, metric

    if len(seg_c) >= 6:
        # collected: per-10k-event wall time is flat — the best late
        # segment stays within 10% of the best early one (min-of filters
        # scheduler noise; segment 0 is interpreter warm-up)
        early = min(s["wall_s"] for s in seg_c[1:4])
        late = min(s["wall_s"] for s in seg_c[-3:])
        assert late <= 1.10 * early, (early, late)

        # uncollected: replay from program entry makes late segments pay
        # for the whole history — cost visibly grows over the horizon
        early_u = min(s["wall_s"] for s in seg_u[1:4])
        late_u = min(s["wall_s"] for s in seg_u[-3:])
        assert late_u > 1.5 * early_u, (early_u, late_u)

    # collection really ran and really reclaimed
    s = collected["stats"]
    assert s["fossil_collections"] > 0
    assert s["fossil_history_dropped"] > 0
    assert s["fossil_aids_retired"] > 0
    assert s["fossil_log_dropped"] > 0

    headers = ["events", "mode", "wall_s", "rss_delta_kib", "history_rows",
               "aid_table", "log_entries"]
    rows = []
    for mode, segs in (("collected", seg_c), ("uncollected", seg_u)):
        for sample in segs:
            rows.append([sample["events"], mode, sample["wall_s"],
                         sample["rss_delta_kib"], sample["history_rows"],
                         sample["aid_table"], sample["log_entries"]])
    emit(
        "fossil_steady",
        format_table(
            "FOSSIL — steady-state horizon, collected vs uncollected",
            headers,
            rows,
        ),
    )
    emit_json(
        "BENCH_2",
        "fossil_steady",
        {
            "events_total": EVENTS_TOTAL,
            "segment": SEGMENT,
            "deny_rate": DENY_RATE,
            "fossil_interval": FOSSIL_INTERVAL,
            "traces_identical": collected["digest"] == uncollected["digest"],
            "collected": collected,
            "uncollected": uncollected,
        },
    )
    benchmark(lambda: run_horizon(True, events_total=SEGMENT))
