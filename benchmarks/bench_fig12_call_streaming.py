"""Experiment FIG1/FIG2: the paper's Figures 1 and 2, head to head.

Regenerates the implicit figure of the worked example: the pessimistic
(Figure 1) and optimistic (Figure 2) programs run the identical report
workload across a range of network latencies; the optimistic program
must commit the identical server ledger while the worker's makespan
shrinks as latency grows.
"""

from repro.apps.call_streaming import expected_output, run_optimistic, run_pessimistic
from repro.bench import emit, format_table, speedup, streaming_config, sweep

LATENCIES = [1.0, 5.0, 10.0, 25.0, 50.0, 100.0]


def run_pair(latency: float) -> dict:
    config = streaming_config(n_reports=10, latency=latency)
    pess = run_pessimistic(config)
    opt = run_optimistic(config)
    assert pess.server_output == expected_output(config)
    assert opt.server_output == expected_output(config)
    return {
        "pessimistic": pess.makespan,
        "optimistic": opt.makespan,
        "speedup_pct": 100.0 * speedup(pess.makespan, opt.makespan),
        "rollbacks": opt.rollbacks,
    }


def build_table():
    result = sweep("latency", LATENCIES, run_pair)
    metrics = ["pessimistic", "optimistic", "speedup_pct", "rollbacks"]
    return result, format_table(
        "FIG1/FIG2 — Call Streaming: Figure 1 vs Figure 2 (10 reports)",
        result.headers(metrics),
        result.rows(metrics),
    )


def test_fig12_call_streaming(benchmark):
    result, table = build_table()
    emit("fig12_call_streaming", table)
    # shape assertions: optimism wins at every latency, and the win grows
    gains = result.column("speedup_pct")
    assert all(g > 0 for g in gains)
    assert gains[-1] > gains[0]
    assert gains[-1] > 50.0
    # wall-clock of one representative optimistic run
    config = streaming_config(n_reports=10, latency=25.0)
    benchmark(lambda: run_optimistic(config))
