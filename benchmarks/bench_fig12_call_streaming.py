"""Experiment FIG1/FIG2: the paper's Figures 1 and 2, head to head.

Regenerates the implicit figure of the worked example: the pessimistic
(Figure 1) and optimistic (Figure 2) programs run the identical report
workload across a range of network latencies; the optimistic program
must commit the identical server ledger while the worker's makespan
shrinks as latency grows.

A second section runs the same workloads with the observability layer
enabled and cross-checks the registry against values hand-computed from
the raw trace: commit latency (guess -> finalize sim time), the
rollback-cascade-depth histogram, and the wasted-work ratio.
"""

from repro.apps.call_streaming import expected_output, run_optimistic, run_pessimistic
from repro.bench import (
    emit,
    format_table,
    probabilistic_config,
    speedup,
    streaming_config,
    sweep,
)
from repro.obs import Histogram, MetricsRegistry
from repro.obs.metrics import CASCADE_DEPTH_BUCKETS, COMMIT_LATENCY_BUCKETS
from repro.sim import Tracer

LATENCIES = [1.0, 5.0, 10.0, 25.0, 50.0, 100.0]


def run_pair(latency: float) -> dict:
    config = streaming_config(n_reports=10, latency=latency)
    pess = run_pessimistic(config)
    opt = run_optimistic(config)
    assert pess.server_output == expected_output(config)
    assert opt.server_output == expected_output(config)
    return {
        "pessimistic": pess.makespan,
        "optimistic": opt.makespan,
        "speedup_pct": 100.0 * speedup(pess.makespan, opt.makespan),
        "rollbacks": opt.rollbacks,
    }


def build_table():
    result = sweep("latency", LATENCIES, run_pair)
    metrics = ["pessimistic", "optimistic", "speedup_pct", "rollbacks"]
    return result, format_table(
        "FIG1/FIG2 — Call Streaming: Figure 1 vs Figure 2 (10 reports)",
        result.headers(metrics),
        result.rows(metrics),
    )


def hand_computed_from_trace(tracer: Tracer):
    """Recompute commit latencies, cascade depths, and wasted time from
    raw trace records — independently of the metrics listener.

    Explicit guesses pair with finalizes by AID key (AIDs are per-report
    here, so keys are unique); implicit-guess intervals pair FIFO per
    process, since a process's intervals finalize in creation order
    (the commit frontier advances oldest-first).
    """
    explicit_opens = {}
    implicit_opens = {}
    latencies = []
    depths = []
    wasted = 0.0
    for rec in tracer.records:
        if rec.category == "guess":
            explicit_opens[rec.detail["aid"]] = rec.time
        elif rec.category == "implicit_guess":
            implicit_opens.setdefault(rec.process, []).append(rec.time)
        elif rec.category == "finalize":
            aid = rec.detail["aid"]
            if aid is not None:
                latencies.append(rec.time - explicit_opens.pop(aid))
            else:
                latencies.append(rec.time - implicit_opens[rec.process].pop(0))
        elif rec.category == "rollback":
            depths.append(rec.detail["discarded"])
        elif rec.category == "restart":
            wasted += rec.detail["wasted"]
    return latencies, depths, wasted


def run_metered(config, seed: int = 0):
    registry = MetricsRegistry()
    tracer = Tracer()
    result = run_optimistic(config, seed=seed, trace=tracer, metrics=registry)
    return result, registry, tracer


def metrics_section() -> str:
    # Happy path: every guess finalizes, so guess->finalize pairing from
    # the trace is total and the commit-latency histogram must match it.
    happy, registry, tracer = run_metered(streaming_config(n_reports=10, latency=25.0))
    latencies, depths, _ = hand_computed_from_trace(tracer)
    hist = registry.get("hope_commit_latency")
    expected = Histogram("expected", COMMIT_LATENCY_BUCKETS)
    for value in latencies:
        expected.observe(value)
    assert not depths and happy.rollbacks == 0
    assert hist.count == expected.count == len(latencies) > 0
    assert hist.sum == expected.sum
    assert hist.counts == expected.counts

    # Rollback path: cascade depths and wasted time from the trace must
    # match the histogram and counter the listener built.
    lossy, reg2, tr2 = run_metered(
        probabilistic_config(n_reports=12, success_probability=0.5, latency=25.0)
    )
    _, depths2, wasted2 = hand_computed_from_trace(tr2)
    cascade = reg2.get("hope_rollback_cascade_depth")
    expected2 = Histogram("expected", CASCADE_DEPTH_BUCKETS)
    for depth in depths2:
        expected2.observe(depth)
    assert lossy.rollbacks > 0
    assert cascade.count == expected2.count == len(depths2)
    assert cascade.counts == expected2.counts
    wasted_counter = reg2.get("hope_wasted_time_total").value
    assert abs(wasted_counter - wasted2) < 1e-5          # restart detail is rounded
    assert abs(wasted_counter - lossy.wasted_time) < 1e-9
    busy = reg2.get("hope_busy_time").value
    ratio = wasted_counter / (busy + wasted_counter)

    hist2 = reg2.get("hope_commit_latency")
    rows = [
        ["commit latency n", hist.count, hist2.count],
        ["commit latency mean", round(hist.mean, 4), round(hist2.mean, 4)],
        ["rollbacks", happy.rollbacks, lossy.rollbacks],
        ["wasted time", happy.wasted_time, round(wasted_counter, 4)],
        ["wasted-work ratio", 0.0, round(ratio, 4)],
    ]
    table = format_table(
        "FIG1/FIG2 — speculation metrics, cross-checked against the trace",
        ["metric", "happy path", "rollback path"],
        rows,
    )
    depth_rows = [
        [f"<= {bound:g}", count]
        for bound, count in cascade.items()
        if count
    ]
    table += "\n" + format_table(
        "rollback cascade depth (intervals discarded per rollback)",
        ["bucket", "count"],
        depth_rows,
    )
    return table


def test_fig12_metrics_match_trace():
    emit("fig12_metrics", metrics_section())


def test_fig12_call_streaming(benchmark):
    result, table = build_table()
    emit("fig12_call_streaming", table)
    # shape assertions: optimism wins at every latency, and the win grows
    gains = result.column("speedup_pct")
    assert all(g > 0 for g in gains)
    assert gains[-1] > gains[0]
    assert gains[-1] > 50.0
    # wall-clock of one representative optimistic run
    config = streaming_config(n_reports=10, latency=25.0)
    benchmark(lambda: run_optimistic(config))
