"""Experiment AIDMODE: centralized registry vs distributed AID tasks (§7).

The paper's prototype runs dependency tracking over PVM messages; our
registry mode idealizes that to zero latency.  The sweep raises the
control-plane latency and measures what distribution costs: control
traffic, wasted speculation (victims keep computing until the NOTIFY
lands), and end-to-end makespan — with committed output equivalence
asserted throughout.
"""

from repro.apps.call_streaming import (
    CallStreamConfig,
    expected_output,
    oneway_gateway,
    optimistic_worker,
    print_server,
    worrywart,
)
from repro.bench import emit, format_table, sweep
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency, LinkLatency

CONTROL_LATENCIES = [0.0, 0.5, 2.0, 5.0, 10.0]


def _run(aid_mode: str, control_latency: float):
    config = CallStreamConfig(report_lines=(30, 70, 20, 70, 10), page_size=60)
    links = LinkLatency(default=ConstantLatency(config.latency))
    links.set_link("worker", "worrywart-0", ConstantLatency(config.wart_latency))
    links.set_link("worrywart-0", "worker", ConstantLatency(config.wart_latency))
    links.set_link("server_oneway", "server", ConstantLatency(0.0))
    links.set_link("server", "server_oneway", ConstantLatency(0.0))
    system = HopeSystem(
        latency=links, aid_mode=aid_mode, control_latency=control_latency
    )
    system.spawn("server", print_server, config.page_size, config.server_service_time)
    system.spawn("server_oneway", oneway_gateway)
    system.spawn("worrywart-0", worrywart, config, config.n_reports)
    system.spawn("worker", optimistic_worker, config)
    makespan = system.run(max_events=2_000_000)
    assert system.committed_outputs("server") == expected_output(config)
    return system, makespan


def run_latency(control_latency: float) -> dict:
    mode = "registry" if control_latency == 0.0 else "aid_task"
    system, makespan = _run(mode, control_latency)
    stats = system.stats()
    return {
        "mode": mode,
        "makespan": makespan,
        "control_msgs": stats["control_messages"],
        "wasted": stats["wasted_time"],
        "rollbacks": stats["rollbacks"],
    }


def test_aid_modes(benchmark):
    result = sweep("ctl latency", CONTROL_LATENCIES, run_latency)
    metrics = ["mode", "makespan", "control_msgs", "wasted", "rollbacks"]
    emit(
        "aid_modes",
        format_table(
            "AIDMODE — registry vs distributed AID-task control plane "
            "(page-full workload, output equivalence asserted)",
            result.headers(metrics),
            result.rows(metrics),
        ),
    )
    # distribution costs messages the registry never sends
    assert result.column("control_msgs")[0] == 0
    assert all(c > 0 for c in result.column("control_msgs")[1:])
    # slower control plane ⇒ no faster recovery (weakly monotone makespan)
    spans = result.column("makespan")
    assert spans[1] <= spans[-1]
    benchmark(lambda: _run("aid_task", 2.0))
