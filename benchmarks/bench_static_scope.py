"""Experiment STATIC: the cost of statically-bounded optimism (§2).

Three executions of the same report stream: pessimistic (Figure 1),
statically-scoped speculation (Bubenik/Zwaenepoel-style: local compute
may run ahead, but no speculative message ever leaves the process), and
HOPE (speculation crosses processes freely).  The sweep varies how much
*local* preparation each report needs — the only thing static scoping can
hide — and shows HOPE's additional win is the *remote* latency.
"""

from repro.apps.call_streaming import run_optimistic, run_pessimistic
from repro.baselines.static_scope import run_static_scope
from repro.bench import emit, format_table, streaming_config, sweep

PREPS = [1.0, 5.0, 15.0, 30.0, 60.0]
LATENCY = 30.0


def run_prep(prep: float) -> dict:
    config = streaming_config(
        n_reports=8, latency=LATENCY, summary_prep=prep, n_warts=8
    )
    pess = run_pessimistic(config)
    static = run_static_scope(config)
    hope = run_optimistic(config)
    assert pess.server_output == static.server_output == hope.server_output
    return {
        "pessimistic": pess.makespan,
        "static_scope": static.makespan,
        "hope": hope.makespan,
        "static_gain_pct": 100 * (pess.makespan - static.makespan) / pess.makespan,
        "hope_gain_pct": 100 * (pess.makespan - hope.makespan) / pess.makespan,
    }


def test_static_scope(benchmark):
    result = sweep("summary_prep", PREPS, run_prep)
    metrics = [
        "pessimistic",
        "static_scope",
        "hope",
        "static_gain_pct",
        "hope_gain_pct",
    ]
    emit(
        "static_scope",
        format_table(
            f"STATIC — statically-scoped vs HOPE optimism (latency {LATENCY})",
            result.headers(metrics),
            result.rows(metrics),
        ),
    )
    static_gain = result.column("static_gain_pct")
    hope_gain = result.column("hope_gain_pct")
    # HOPE dominates static scoping at every preparation size
    assert all(h > s for h, s in zip(hope_gain, static_gain))
    # static scoping's gain grows with local prep (the only thing it hides)
    assert static_gain[-1] > static_gain[0]
    config = streaming_config(n_reports=8, latency=LATENCY, summary_prep=15.0)
    benchmark(lambda: run_static_scope(config))
