"""CI smoke: the fixed-seed chaos matrix must stay green and cheap.

Runs the full :mod:`repro.chaos` matrix (every registered workload x the
standard fault plans x the budgeted seed set) with invariant monitors
attached, and fails if

* fewer than ``chaos_min_cases`` combinations ran (the matrix silently
  shrank),
* any case fails — an invariant violation, a livelock, a stuck process,
  a fingerprint mismatch on re-run, or committed state diverging from
  the fault-free twin,
* the whole matrix exceeds ``chaos_max_wall_s`` (the harness is meant to
  be cheap enough to run on every push).

Seeds are fixed, fault sampling is drawn from the seeded stream, and the
workloads use constant latency, so this is fully deterministic — a
failure here is a real regression, never flake.

Usage::

    PYTHONPATH=src python benchmarks/smoke_chaos.py
"""

import json
import os
import sys
import tempfile
import time

HERE = os.path.dirname(os.path.abspath(__file__))


def main() -> int:
    with open(os.path.join(HERE, "overhead_threshold.json"), encoding="utf-8") as fh:
        budget = json.load(fh)
    from repro.chaos import format_report, run_matrix

    seeds = budget["chaos_seeds"]
    min_cases = budget["chaos_min_cases"]
    max_wall = budget["chaos_max_wall_s"]
    # Case outcomes are deterministic — any failure fails immediately.
    # The wall bound measures the box as much as the code, so it is
    # judged best-of-attempts like the TRACK check in smoke_overhead.py:
    # a real complexity regression is slow on every attempt, one
    # contended CI moment is not.
    best_wall = None
    for attempt in range(budget.get("attempts", 3)):
        started = time.perf_counter()
        with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
            report = run_matrix(seeds=seeds, repro_dir=tmp)
            wall = time.perf_counter() - started
            if attempt == 0:
                print(format_report(report))
            print(f"chaos smoke attempt {attempt + 1}: {report['total']} cases "
                  f"in {wall:.2f}s (budget: >= {min_cases} cases, <= {max_wall}s)")
            if report["total"] < min_cases:
                print(f"FAIL: only {report['total']} cases ran, budget requires "
                      f">= {min_cases}")
                return 1
            if report["failures"]:
                print(f"FAIL: {len(report['failures'])} chaos case(s) failed")
                return 1
        best_wall = wall if best_wall is None else min(best_wall, wall)
        if best_wall <= max_wall:
            break
    if best_wall is None or best_wall > max_wall:
        print(f"FAIL: chaos matrix took {best_wall:.2f}s best-of-attempts, "
              f"budget is {max_wall}s")
        return 1
    print("chaos smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
