"""Experiment CLAIM-80: §7's "performance gains of up to 80% using the
Call Streaming protocol".

The prototype's number came from the authors' PVM testbed; the *shape* we
must reproduce is that, with verification pipelined and latency dominating
local work, the Figure 2 transformation approaches and passes an 80%
makespan reduction.  The sweep varies the latency-to-compute ratio and
reports the best observed gain.
"""

from repro.apps.call_streaming import run_optimistic, run_pessimistic
from repro.bench import emit, format_table, speedup, streaming_config, sweep

RATIOS = [1.0, 2.0, 5.0, 10.0, 25.0, 50.0]       # latency / local compute


def run_ratio(ratio: float) -> dict:
    config = streaming_config(
        n_reports=20,
        latency=ratio,            # local_compute = 1.0 ⇒ ratio is the knob
        local_compute=1.0,
        summary_prep=2.0,
    )
    pess = run_pessimistic(config)
    opt = run_optimistic(config)
    assert opt.server_output == pess.server_output
    return {
        "pessimistic": pess.makespan,
        "optimistic": opt.makespan,
        "gain_pct": 100.0 * speedup(pess.makespan, opt.makespan),
        "worker_blocked_pess": pess.worker_blocked,
        "worker_blocked_opt": opt.worker_blocked,
    }


def build_table():
    result = sweep("lat/compute", RATIOS, run_ratio)
    metrics = [
        "pessimistic",
        "optimistic",
        "gain_pct",
        "worker_blocked_pess",
        "worker_blocked_opt",
    ]
    return result, format_table(
        'CLAIM-80 — "gains of up to 80%" (20 reports, pipelined warts)',
        result.headers(metrics),
        result.rows(metrics),
    )


def test_claim_80pct(benchmark):
    result, table = build_table()
    emit("claim_80pct", table)
    gains = result.column("gain_pct")
    # monotone in the latency ratio, and "up to 80%" is actually reached
    assert gains == sorted(gains)
    assert max(gains) >= 80.0
    config = streaming_config(n_reports=20, latency=50.0)
    benchmark(lambda: run_optimistic(config))
