"""Experiment (extension): optimistic concurrency vs read-before-write.

§7's future-work replication claim, quantified: optimistic clients send
updates against their cache and keep computing; pessimistic clients pay a
read round trip before every update.  Contention is the enemy of
optimism — the sweep moves from private keys to one hot key and shows
where the denial/retry cost eats the latency win.
"""

from repro.apps.replication import (
    ReplicationWorkload,
    run_optimistic_replication,
    run_pessimistic_replication,
)
from repro.bench import emit, format_table, sweep
from repro.sim import ConstantLatency

#: label -> (n_clients, keys, assignment)
CONTENTION_LEVELS = {
    "private": (4, ("a", "b", "c", "d"), "fixed"),
    "pairs": (4, ("a", "b"), "fixed"),
    "rotating": (4, ("a", "b", "c", "d"), "rotate"),
    "hot-key": (4, ("hot",), "fixed"),
}
LATENCY = 15.0


def run_level(label: str) -> dict:
    n_clients, keys, assignment = CONTENTION_LEVELS[label]
    workload = ReplicationWorkload(
        n_clients=n_clients,
        ops_per_client=5,
        keys=keys,
        client_compute=1.0,
        assignment=assignment,
    )
    latency = ConstantLatency(LATENCY)
    opt = run_optimistic_replication(workload, latency=latency)
    pess = run_pessimistic_replication(workload, latency=latency)
    total = sum(v for _ver, v in opt.cells.values())
    assert total == workload.total_ops
    return {
        "optimistic": opt.makespan,
        "pessimistic": pess.makespan,
        "denials": opt.denials,
        "rollbacks": opt.rollbacks,
        "speedup_pct": 100 * (pess.makespan - opt.makespan) / pess.makespan,
    }


def test_replication_contention(benchmark):
    result = sweep("contention", list(CONTENTION_LEVELS), run_level)
    metrics = ["optimistic", "pessimistic", "denials", "rollbacks", "speedup_pct"]
    emit(
        "replication",
        format_table(
            f"REPLICATION — OCC vs read-before-write "
            f"(4 clients x 5 ops, latency {LATENCY})",
            result.headers(metrics),
            result.rows(metrics),
        ),
    )
    denials = result.column("denials")
    speedups = result.column("speedup_pct")
    assert denials[0] == 0                  # private keys: no conflicts
    assert any(d > 0 for d in denials[1:])  # sharing creates real contention
    assert speedups[0] > 40.0               # uncontended OCC wins big
    assert all(s > 0 for s in speedups)     # OCC never loses outright here
    workload = ReplicationWorkload(n_clients=4, ops_per_client=5, keys=("hot",))
    benchmark(
        lambda: run_optimistic_replication(workload, latency=ConstantLatency(LATENCY))
    )
