"""Experiment HOTPATH2: hot-path throughput round 2 — per-lever before/after.

Round 1 (timer wheel + batched dispatch) left the TRACK overhead ratio
at ~1.3.  This round closes the remaining gap with four levers, each
measured here against its recorded "before":

* **L1 chain parity** — the wheel's sparse fast path plus the
  precomputed ``ScheduledEvent.key`` close its old ~1.3× sequential-
  chain loss to C ``heapq`` (parity floor ≥0.95, maintained from the
  previous round); ``kernel="window"`` — ``bisect.insort`` into a
  sorted list behind the same seam — is measured alongside with a
  looser complexity-tripwire floor (C ``heapq`` concedes nothing on a
  size-1 queue).
* **L2 same-tick coalescing** — ``Network.send`` appends same-tick
  deliveries to one scheduled event instead of scheduling one event per
  message.  Measured as simulator events per message on a fan-out
  workload (before: ≥1.0 event/message by construction).
* **L3+L4 hope-only frame cuts** — ``__slots__`` on every per-message
  object, ``tuple.__new__`` pre-bound constructors for log entries and
  received messages, reusable recv waiters, inlined tracer/track guards.
  These only touch HOPE-side code (cutting *shared* substrate cost makes
  the ratio worse: (H−c)/(B−c) > H/B), so they are measured end to end
  as the TRACK ``hope_wall / bare_wall`` ratio.

Byte-identity gates every lever: the matrix below runs full HOPE systems
across kernels × engine modes (plus a faulted chaos case) and asserts
equal trace fingerprints — throughput must never be bought with a
different execution order.

Ratios are judged best-of-``ATTEMPTS`` over interleaved min-of-reps
measurements: a container-noise spike slows one attempt, a real
regression slows all of them.
"""

import importlib.util
import os
import time

from repro.bench import emit, emit_json, format_table
from repro.bench.workloads import build_chaos_mesh, build_chaos_ring
from repro.chaos import WORKLOADS, run_case, standard_plans
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency, Simulator, Tracer

KERNELS = ("heap", "wheel", "window")
REPEATS = 5
ATTEMPTS = 6

#: The ratio trajectory this benchmark extends (TRACK n=200,
#: hope-definite vs bare, best observed per revision).
RATIO_TRAJECTORY = {
    "seed": 2.89,
    "interning+trampoline": 1.8,
    "wheel+batched-dispatch": 1.30,
}
#: Round 2 acceptance bar.
MAX_RATIO = 1.15
#: Parity floor for the default (wheel) kernel on the sequential chain —
#: the pre-existing gate this round must maintain; the sparse fast path
#: plus the precomputed ``ScheduledEvent.key`` hold it at ~1.0.
MIN_CHAIN_PARITY = 0.95
#: Tripwire floor for the window kernel on the same chain.  C ``heapq``
#: on a size-1 queue does no comparisons and no allocation, so the
#: window's per-push tuple build keeps it at ~0.85-1.05 there (its
#: compactions are cheaper, its wide-backlog inserts worse — see
#: docs/PERFORMANCE.md §8).  0.80 catches a complexity regression
#: (an accidental O(n) scan halves it immediately), not the C gap.
WINDOW_CHAIN_FLOOR = 0.80
#: Before coalescing, every message scheduled its own delivery event.
PRE_COALESCE_EVENTS_PER_MESSAGE = 1.0


def _load_track():
    path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "bench_tracking_overhead.py"
    )
    spec = importlib.util.spec_from_file_location("bench_tracking_overhead", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


# ----------------------------------------------------------------------
# byte-identity matrix: kernels x engine modes x one faulted chaos case
# ----------------------------------------------------------------------
_ENGINE_MODES = {
    "plain": {},
    "fossil": {"fossil_collect": True, "fossil_interval": 4},
    "fast-rollback": {"fast_rollback": True},
    "fossil+fast": {
        "fossil_collect": True,
        "fossil_interval": 4,
        "fast_rollback": True,
    },
}


def _fingerprint(kernel: str, build, seed: int, **system_kw) -> str:
    tracer = Tracer()
    system = HopeSystem(
        seed=seed,
        latency=ConstantLatency(1.0),
        trace=tracer,
        kernel=kernel,
        **system_kw,
    )
    build(system)
    system.run(max_events=200_000)
    return tracer.fingerprint()


def identity_matrix() -> dict:
    """Every (workload, mode) cell must fingerprint identically under
    all three kernels; one faulted chaos case widens the net past the
    fault-free path.  Returns the cell census for BENCH_5.json."""
    cells = 0
    for build in (build_chaos_mesh, build_chaos_ring):
        for mode, kw in sorted(_ENGINE_MODES.items()):
            prints = {k: _fingerprint(k, build, seed=3, **kw) for k in KERNELS}
            assert len(set(prints.values())) == 1, (build.__name__, mode, prints)
            cells += 1
    # one standard fault plan (drops + dups + reorder + jitter) on a
    # chaos workload — the storm plan exercises every fault path at once
    wl_name = sorted(WORKLOADS)[0]
    wl = WORKLOADS[wl_name]
    plan_name = "storm"
    plan = standard_plans(wl_name)[plan_name]
    results = {
        k: run_case(wl, 2, plan, plan_name=plan_name, kernel=k) for k in KERNELS
    }
    for kernel, result in results.items():
        assert result.ok, (kernel, plan_name, result.failure)
    prints = {k: r.fingerprint for k, r in results.items()}
    assert len(set(prints.values())) == 1, (wl_name, plan_name, prints)
    cells += 1
    return {
        "kernels": list(KERNELS),
        "modes": sorted(_ENGINE_MODES),
        "workloads": ["chaos_mesh", "chaos_ring"],
        "fault_case": f"{wl_name}/{plan_name}",
        "cells": cells,
        "all_identical": True,
    }


# ----------------------------------------------------------------------
# L1: sequential-chain kernel parity (heap oracle vs wheel vs window)
# ----------------------------------------------------------------------
def _chain_wall(kernel: str, n: int) -> float:
    sim = Simulator(kernel=kernel)
    remaining = [n]

    def step() -> None:
        remaining[0] -= 1
        if remaining[0]:
            sim.schedule(0.37, step)

    sim.schedule(0.0, step)
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    assert sim.events_processed == n
    return wall


def chain_parity(n: int = 20_000, repeats: int = REPEATS) -> dict:
    """Chain events/sec per kernel, parity = heap_wall / kernel_wall
    (>1 means faster than the heap).  Interleaved per rep."""
    walls: dict = {k: [] for k in KERNELS}
    for _ in range(repeats):
        for kernel in KERNELS:
            walls[kernel].append(_chain_wall(kernel, n))
    mins = {k: min(w) for k, w in walls.items()}
    return {
        "events": n,
        **{f"{k}_kev_s": n / mins[k] / 1000 for k in KERNELS},
        **{f"{k}_parity": mins["heap"] / mins[k] for k in KERNELS},
    }


# ----------------------------------------------------------------------
# L2: same-tick coalescing on a fan-out workload
# ----------------------------------------------------------------------
def fanout_coalescing(width: int = 16, rounds: int = 20) -> dict:
    """A hub broadcasts to ``width`` peers each round (all sends in the
    same tick) and waits for their replies.  Before coalescing every
    message scheduled its own delivery event; with batching, one event
    drains each same-tick group."""
    system = HopeSystem(latency=ConstantLatency(1.0))

    def hub(p, peers, rounds):
        for r in range(rounds):
            for peer in peers:
                yield p.send(peer, r)
            acks = 0
            while acks < len(peers):
                yield p.recv()
                acks += 1

    def leaf(p, hub_name, rounds):
        for _ in range(rounds):
            msg = yield p.recv()
            yield p.send(hub_name, msg.payload)

    peers = [f"w{i}" for i in range(width)]
    system.spawn("hub", hub, peers, rounds)
    for name in peers:
        system.spawn(name, leaf, "hub", rounds)
    system.run(max_events=1_000_000)
    stats = system.stats()
    return {
        "width": width,
        "rounds": rounds,
        "messages": stats["messages_sent"],
        "sim_events": stats["sim_events"],
        "events_per_message": stats["sim_events"] / stats["messages_sent"],
        "before_events_per_message": PRE_COALESCE_EVENTS_PER_MESSAGE,
    }


# ----------------------------------------------------------------------
# L3+L4 (end to end): the TRACK ratio, best of ATTEMPTS
# ----------------------------------------------------------------------
def track_ratio(attempts: int = ATTEMPTS, n: int = 200) -> dict:
    track = _load_track()
    best = None
    ratios = []
    for _ in range(attempts):
        point = track.run_point(n, repeats=REPEATS)
        ratios.append(round(point["overhead_ratio"], 3))
        if best is None or point["overhead_ratio"] < best["overhead_ratio"]:
            best = point
    return {
        "messages": n,
        "attempts": ratios,
        "best_ratio": min(ratios),
        "bare_wall_ms": best["bare_wall_ms"],
        "hope_wall_ms": best["hope_wall_ms"],
        "trajectory": {**RATIO_TRAJECTORY, "round-2": min(ratios)},
    }


def test_hotpath_round2(benchmark):
    matrix = identity_matrix()

    # Parity is judged per kernel, best-of-attempts: each kernel's best
    # attempt must clear the floor (demanding one attempt where *both*
    # clear it simultaneously doubles the noise exposure; a real
    # regression still fails every attempt).
    parity = None
    best_parity = {k: 0.0 for k in KERNELS}
    for _ in range(ATTEMPTS):
        point = chain_parity()
        if parity is None or min(
            point["wheel_parity"], point["window_parity"]
        ) > min(parity["wheel_parity"], parity["window_parity"]):
            parity = point
        for k in KERNELS:
            best_parity[k] = max(best_parity[k], point[f"{k}_parity"])
        if (
            best_parity["wheel"] >= MIN_CHAIN_PARITY
            and best_parity["window"] >= WINDOW_CHAIN_FLOOR
        ):
            break
    parity = {**parity, "best_parity": best_parity}

    coalesce = fanout_coalescing()
    track = track_ratio()

    emit(
        "hotpath_round2",
        format_table(
            "HOTPATH2 — round-2 levers, before/after",
            ["lever", "metric", "before", "after"],
            [
                ["L1 window kernel", "chain parity vs heap",
                 1.0, parity["best_parity"]["window"]],
                ["L1 wheel (default)", "chain parity vs heap",
                 1.0, parity["best_parity"]["wheel"]],
                ["L2 coalescing", "sim events per message",
                 coalesce["before_events_per_message"],
                 coalesce["events_per_message"]],
                ["L3+L4 frame cuts", "TRACK hope/bare ratio",
                 RATIO_TRAJECTORY["wheel+batched-dispatch"],
                 track["best_ratio"]],
            ],
        ),
    )
    emit_json(
        "BENCH_5",
        "hotpath_round2",
        {
            "identity_matrix": matrix,
            "chain_parity": parity,
            "coalescing": coalesce,
            "track": track,
            "budgets": {
                "max_overhead_ratio": MAX_RATIO,
                "min_chain_parity": MIN_CHAIN_PARITY,
                "window_chain_floor": WINDOW_CHAIN_FLOOR,
            },
        },
    )

    # the round-2 acceptance bar, judged best-of-attempts
    assert track["best_ratio"] <= MAX_RATIO, track
    # the default kernel must stay within 5% of the heap on the chain
    # (the pre-existing floor, maintained); the window gets the looser
    # complexity tripwire — see WINDOW_CHAIN_FLOOR
    assert parity["best_parity"]["wheel"] >= MIN_CHAIN_PARITY, parity
    assert parity["best_parity"]["window"] >= WINDOW_CHAIN_FLOOR, parity
    # coalescing must actually batch: far fewer events than messages
    assert coalesce["events_per_message"] <= 0.5, coalesce
    benchmark(lambda: fanout_coalescing(width=8, rounds=5))


if __name__ == "__main__":
    import pytest
    import sys

    sys.exit(pytest.main([__file__, "-q", "--benchmark-disable"]))
