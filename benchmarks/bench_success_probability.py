"""Experiment SWEEP-P: when does optimism pay?

§3's implicit claim: optimism wins when the assumption usually holds.
The sweep varies the probability that a report leaves the page partial
(the PartPage assumption's success rate) and reports both programs'
makespans plus the rollback count; with a non-trivial rollback overhead
the curves cross — the crossover probability is the actionable number.
"""

from repro.apps.call_streaming import run_optimistic, run_pessimistic
from repro.bench import (
    emit,
    find_crossover,
    format_table,
    probabilistic_config,
    sweep,
)

PROBS = [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0]
ROLLBACK_OVERHEAD = 30.0          # makes failed speculation genuinely costly


def run_prob(p: float) -> dict:
    config = probabilistic_config(
        n_reports=12,
        success_probability=p,
        seed=7,
        latency=10.0,
        rollback_overhead=ROLLBACK_OVERHEAD,
    )
    pess = run_pessimistic(config)
    opt = run_optimistic(config)
    assert opt.server_output == pess.server_output
    return {
        "pessimistic": pess.makespan,
        "optimistic": opt.makespan,
        "rollbacks": opt.rollbacks,
        "wasted": opt.wasted_time,
    }


def build_table():
    result = sweep("P(success)", PROBS, run_prob)
    metrics = ["pessimistic", "optimistic", "rollbacks", "wasted"]
    table = format_table(
        "SWEEP-P — makespan vs assumption success probability "
        f"(rollback overhead {ROLLBACK_OVERHEAD})",
        result.headers(metrics),
        result.rows(metrics),
    )
    return result, table


def test_success_probability_sweep(benchmark):
    result, table = build_table()
    cross = find_crossover(
        result.values, result.column("optimistic"), result.column("pessimistic")
    )
    emit(
        "success_probability",
        table + f"\n\ncrossover at P(success) ≈ {cross:.2f}"
        if cross is not None
        else table + "\n\nno crossover in range",
    )
    opt = result.column("optimistic")
    pess = result.column("pessimistic")
    rolls = result.column("rollbacks")
    # all assumptions hold ⇒ no rollbacks and a clear win
    assert rolls[-1] == 0
    assert opt[-1] < pess[-1]
    # all assumptions fail ⇒ optimism loses under this rollback overhead
    assert rolls[0] >= 12
    assert opt[0] > pess[0]
    # more successes ⇒ fewer rollbacks (weakly monotone)
    assert all(a >= b for a, b in zip(rolls, rolls[1:]))
    config = probabilistic_config(12, 0.5, seed=7, latency=10.0)
    benchmark(lambda: run_optimistic(config))
