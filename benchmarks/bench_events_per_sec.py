"""Experiment EVSEC: event-kernel throughput — heap vs wheel vs bare.

Headline metric for the timer-wheel kernel: events per second.  Two
layers are measured:

* *raw kernel* — three scheduling shapes on the bare ``Simulator``,
  run under both ``kernel="heap"`` and ``kernel="wheel"``:

  - ``chain``    each event schedules its successor (deep, sparse queue;
                 exercises the wheel's sparse fast path),
  - ``fanout``   all events scheduled up front across mixed timescales
                 (wide queue; exercises bucketing and cascades),
  - ``cancel``   schedule/cancel churn (exercises O(1) unlink vs the
                 heap's lazy-delete + compaction sweeps);

* *end to end* — the TRACK ping-pong, bare simulator vs the full HOPE
  runtime on each kernel.  ``hope_wall / bare_wall`` is the overhead
  ratio this PR drives from ~1.8 to ≤1.4; batched effect dispatch also
  roughly halves the *number* of events HOPE schedules per message.

Wall times are min-of-``REPEATS`` with the contenders interleaved per
rep, so a machine-speed swing hits all of them alike.  Event counts are
asserted identical between kernels — throughput must never be bought
with a different execution order.
"""

import importlib.util
import os
import random
import time

from repro.sim import Simulator
from repro.bench import emit, emit_json, format_table, sweep

N_EVENTS = 20_000
N_MESSAGES = 200
REPEATS = 5
#: Re-measure a shape whose speedup floor failed up to this many times and
#: judge the best attempt (machine-noise tolerance; see test body).
BAR_ATTEMPTS = 3

#: Pre-wheel baselines, measured at the parent commit (binary-heap
#: kernel, per-message resume events): the TRACK n=200 overhead ratio,
#: and the number of simulator events HOPE scheduled for the n=200
#: ping-pong.  Recorded as the "before" of this PR's before/after.
PRE_WHEEL_RATIO = 1.785
PRE_BATCHING_HOPE_EVENTS = 802


def _noop():
    pass


def _chain(sim: Simulator, n: int) -> None:
    remaining = [n]

    def step() -> None:
        remaining[0] -= 1
        if remaining[0]:
            sim.schedule(0.37, step)

    sim.schedule(0.0, step)


def _fanout(sim: Simulator, n: int) -> None:
    rng = random.Random(7)
    for _ in range(n):
        sim.schedule(rng.random() * rng.choice([1.0, 50.0, 3000.0]), _noop)


def _cancel(sim: Simulator, n: int) -> None:
    rng = random.Random(11)
    handles = []
    for i in range(n):
        handles.append(sim.schedule(rng.random() * 100.0, _noop))
        if i % 2:
            handles.pop(rng.randrange(len(handles))).cancel()


SHAPES = {"chain": _chain, "fanout": _fanout, "cancel": _cancel}


def run_point(shape: str, n: int = N_EVENTS, repeats: int = REPEATS) -> dict:
    """Time one scheduling shape under both kernels, interleaved per rep.

    The clock covers scheduling *and* draining — schedule/cancel cost is
    precisely what the wheel changes, so it must be inside the window.
    """
    build = SHAPES[shape]
    walls: dict = {"heap": [], "wheel": []}
    events: dict = {}
    for _ in range(repeats):
        for kernel in ("heap", "wheel"):
            sim = Simulator(kernel=kernel)
            start = time.perf_counter()
            build(sim, n)
            sim.run()
            walls[kernel].append(time.perf_counter() - start)
            events[kernel] = sim.events_processed
    assert events["heap"] == events["wheel"], shape
    heap_eps = events["heap"] / min(walls["heap"])
    wheel_eps = events["wheel"] / min(walls["wheel"])
    return {
        "events": events["wheel"],
        "heap_kev_s": heap_eps / 1000,
        "wheel_kev_s": wheel_eps / 1000,
        "speedup": wheel_eps / heap_eps,
    }


def _load_track():
    path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "bench_tracking_overhead.py"
    )
    spec = importlib.util.spec_from_file_location("bench_tracking_overhead", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def end_to_end(n: int = N_MESSAGES, repeats: int = REPEATS) -> dict:
    """Bare simulator vs HOPE-on-heap vs HOPE-on-wheel, same ping-pong."""
    track = _load_track()
    bares, heaps, wheels = [], [], []
    for _ in range(repeats):
        bares.append(track._bare_pingpong(n))
        heaps.append(track._hope_pingpong(n, speculative=False, kernel="heap"))
        wheels.append(track._hope_pingpong(n, speculative=False, kernel="wheel"))
    bare_wall = min(r["wall_s"] for r in bares)
    heap_wall = min(r["wall_s"] for r in heaps)
    wheel_wall = min(r["wall_s"] for r in wheels)
    return {
        "bare_events": bares[0]["events"],
        "hope_events": wheels[0]["events"],
        "bare_kev_s": bares[0]["events"] / bare_wall / 1000,
        "hope_heap_kev_s": heaps[0]["events"] / heap_wall / 1000,
        "hope_wheel_kev_s": wheels[0]["events"] / wheel_wall / 1000,
        "overhead_ratio": wheel_wall / bare_wall,
        "pre_wheel_ratio": PRE_WHEEL_RATIO,
        "improvement": PRE_WHEEL_RATIO / (wheel_wall / bare_wall),
    }


def test_events_per_sec(benchmark):
    kernel_result = sweep("shape", sorted(SHAPES), run_point)
    kernel_metrics = ["events", "heap_kev_s", "wheel_kev_s", "speedup"]
    e2e = end_to_end()
    e2e_metrics = [
        "bare_events",
        "hope_events",
        "bare_kev_s",
        "hope_heap_kev_s",
        "hope_wheel_kev_s",
        "overhead_ratio",
        "pre_wheel_ratio",
        "improvement",
    ]
    emit(
        "events_per_sec",
        format_table(
            "EVSEC — kernel throughput (kilo-events/sec), heap vs wheel",
            kernel_result.headers(kernel_metrics),
            kernel_result.rows(kernel_metrics),
        )
        + "\n\n"
        + format_table(
            "EVSEC — end-to-end ping-pong, bare vs HOPE (heap/wheel)",
            ["n_messages"] + e2e_metrics,
            [[N_MESSAGES] + [e2e[k] for k in e2e_metrics]],
        ),
    )
    emit_json(
        "BENCH_3",
        "events_per_sec",
        {
            "metric": "events/sec (wall includes scheduling), min of %d "
            "interleaved reps" % REPEATS,
            "n_events": N_EVENTS,
            "kernel_shapes": [
                dict(zip(["shape"] + kernel_metrics, row))
                for row in kernel_result.rows(kernel_metrics)
            ],
            "end_to_end": dict(e2e, n_messages=N_MESSAGES),
            "before": {
                "overhead_ratio": PRE_WHEEL_RATIO,
                "hope_events_per_pingpong": PRE_BATCHING_HOPE_EVENTS,
            },
        },
    )
    # determinism: both kernels processed identical event counts (asserted
    # per-point inside run_point), and batched dispatch really did shrink
    # HOPE's event budget — at most half of what per-message resume events
    # used to cost (802 for n=200), and no more than the bare simulator's.
    assert e2e["hope_events"] <= PRE_BATCHING_HOPE_EVENTS // 2 + 2
    assert e2e["hope_events"] <= e2e["bare_events"]
    # the wheel holds parity-or-better where bucketing matters (bulk
    # fan-out, cancel churn), and the sparse-mode fast path keeps the pure
    # chain at heap parity: below _WheelQueue.SPARSE_MAX pending events the
    # wheel *is* a plain heap (class-swapped sparse mode — no tick math,
    # no masks, no size counter), so a sequential chain pays only one
    # len() compare per push over the heap kernel.  Judged best of
    # BAR_ATTEMPTS — run-to-run machine noise exceeds the margin under
    # test, so a single unlucky interleaving must not fail the floor
    # (same policy as smoke_overhead.py's budget checks).
    bars = {"fanout": 0.9, "cancel": 0.9, "chain": 0.95}
    speedups = dict(zip(kernel_result.values, kernel_result.column("speedup")))
    for shape, floor in bars.items():
        best = speedups[shape]
        for _ in range(BAR_ATTEMPTS - 1):
            if best >= floor:
                break
            best = max(best, run_point(shape)["speedup"])
        assert best >= floor, (shape, best, speedups)
    assert e2e["overhead_ratio"] <= 1.75, e2e
    benchmark(lambda: run_point("fanout", n=5_000, repeats=1))
