"""CI smoke: durable runs must stay cheap, recoverable, and honest.

Three budgets from ``overhead_threshold.json``:

* **DURABLE overhead** — wall time of the commit-point counter workload
  with snapshot+WAL recording on vs. off must stay at or below
  ``max_durable_overhead_ratio``, judged best-of-attempts like the TRACK
  check in ``smoke_overhead.py``.  Recording writes sealed envelopes and
  fsyncs WAL batch markers from every fossil pass, so the ratio is well
  above 1 by design; the budget catches a regression that starts
  serializing speculative state or snapshotting every event.
* **RECOVERY wall** — killing the workload at the latest budgeted crash
  point and resuming (load + verify + WAL replay + reconvergence) must
  finish within ``max_recovery_wall_s``.
* **KILL/RESUME equality** — at each fraction in ``durable_kill_fracs``,
  a child process is killed mid-run by ``os._exit`` (real process death
  when the platform has ``fork``; in-process abandonment otherwise) and
  the resumed run's committed state must equal the uninterrupted twin's
  byte for byte — plus one envelope- and one WAL-corruption case that
  must be *detected* (counted rejections/discards) and survived.

Fully deterministic except for wall clocks; the equality checks are a
real regression whenever they fail, never flake.

Usage::

    PYTHONPATH=src python benchmarks/smoke_durability.py
"""

import json
import os
import shutil
import sys
import tempfile
import time

HERE = os.path.dirname(os.path.abspath(__file__))


def _run_counter(durable_dir, workers, rounds, opts=None):
    from repro.bench.workloads import build_durable_counter
    from repro.runtime import HopeSystem
    from repro.sim import ConstantLatency

    kwargs = dict(
        seed=7, latency=ConstantLatency(1.0),
        fossil_collect=True, fossil_interval=8,
    )
    if durable_dir is not None:
        kwargs.update(durable_dir=durable_dir, durable_opts=dict(opts or {}))
    system = HopeSystem(**kwargs)
    build_durable_counter(system, workers=workers, rounds=rounds)
    started = time.perf_counter()
    system.run()
    return time.perf_counter() - started, system


def _check_overhead(budget: dict) -> int:
    limit = budget["max_durable_overhead_ratio"]
    workers, rounds = 4, budget.get("durable_rounds", 120)
    best = None
    for attempt in range(budget.get("attempts", 3)):
        bare_wall, bare = _run_counter(None, workers, rounds)
        with tempfile.TemporaryDirectory(prefix="durable-smoke-") as tmp:
            dur_wall, dur = _run_counter(
                tmp, workers, rounds, opts={"snapshot_every": 4}
            )
            stats = dur.stats()["durable"]
        ratio = dur_wall / bare_wall if bare_wall > 0 else float("inf")
        print(
            f"durable overhead attempt {attempt + 1}: bare {bare_wall:.3f}s, "
            f"durable {dur_wall:.3f}s, ratio {ratio:.2f} (budget {limit}); "
            f"{stats['snapshots_written']} snapshots, "
            f"{stats['wal_records']} WAL records, "
            f"{stats['wal_bytes']} WAL bytes"
        )
        if not stats["snapshots_written"] or not stats["wal_records"]:
            print("FAIL: the durable run never persisted anything")
            return 1
        best = ratio if best is None else min(best, ratio)
        if best <= limit:
            break
    if best is None or best > limit:
        print(f"FAIL: durable overhead ratio {best:.2f} best-of-attempts "
              f"exceeds budget {limit}")
        return 1
    print(f"OK: durable overhead ratio {best:.2f} within budget {limit}")
    return 0


def _check_recovery_wall(budget: dict) -> int:
    from repro.bench.workloads import build_durable_counter
    from repro.runtime import HopeSystem
    from repro.sim import ConstantLatency, EventLimitExceeded

    limit = budget["max_recovery_wall_s"]
    workers, rounds = 4, budget.get("durable_rounds", 120)
    tmp = tempfile.mkdtemp(prefix="durable-recovery-")
    try:
        kwargs = dict(
            seed=7, latency=ConstantLatency(1.0),
            fossil_collect=True, fossil_interval=8,
        )
        system = HopeSystem(
            durable_dir=tmp, durable_opts={"snapshot_every": 4}, **kwargs
        )
        build_durable_counter(system, workers=workers, rounds=rounds)
        _, twin = _run_counter(None, workers, rounds)
        total = twin.stats()["sim_events"]
        try:
            system.run(max_events=max(2, int(total * 0.85)))
        except EventLimitExceeded:
            pass
        del system                      # crash: no durable sync
        started = time.perf_counter()
        resumed = HopeSystem.resume(
            tmp,
            lambda s: build_durable_counter(s, workers=workers, rounds=rounds),
            durable_opts={"snapshot_every": 4}, **kwargs,
        )
        resumed.run()
        wall = time.perf_counter() - started
        stats = resumed.stats()["durable"]
        print(
            f"recovery: resumed generation {stats['resumed_generation']} "
            f"and reconverged in {wall:.3f}s (budget {limit}s)"
        )
        if not stats["resumed"]:
            print("FAIL: nothing was recovered — the kill left no durable state")
            return 1
        want = {n: sorted(map(repr, twin.committed_outputs(n))) for n in twin.procs}
        got = {n: sorted(map(repr, resumed.committed_outputs(n)))
               for n in resumed.procs}
        if got != want:
            print("FAIL: recovered committed state diverged from the twin")
            return 1
        if wall > limit:
            print(f"FAIL: recovery took {wall:.3f}s, budget is {limit}s")
            return 1
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    print("OK: recovery within budget and byte-identical to the twin")
    return 0


def _check_kill_resume(budget: dict) -> int:
    from repro.chaos import format_kill_report, run_kill_resume_matrix

    fracs = budget["durable_kill_fracs"]
    in_process = not hasattr(os, "fork")
    report = run_kill_resume_matrix(
        seeds=budget["chaos_seeds"][:1], fracs=fracs, in_process=in_process,
    )
    print(format_kill_report(report))
    mode = "in-process" if in_process else "fork + os._exit"
    print(f"kill/resume smoke ({mode}): {report['passed']}/{report['total']}")
    if report["failures"]:
        print(f"FAIL: {len(report['failures'])} kill/resume case(s) failed")
        return 1
    print("kill/resume smoke OK")
    return 0


def main() -> int:
    with open(os.path.join(HERE, "overhead_threshold.json"), encoding="utf-8") as fh:
        budget = json.load(fh)
    rc = 0
    rc |= _check_kill_resume(budget)
    rc |= _check_overhead(budget)
    rc |= _check_recovery_wall(budget)
    return 1 if rc else 0


if __name__ == "__main__":
    sys.exit(main())
