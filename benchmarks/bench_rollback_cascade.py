"""Experiment CASCADE: the cost of transitive rollback.

§1: "If, during the optimistic computation, process pi sends a message to
process pj then pj's subsequent computation becomes optimistic" — and a
denial must unwind the whole causal tree.  The sweep measures rollback
cost against the depth of a speculative relay chain and against the
fan-out of a speculative broadcast.
"""

from repro.runtime import HopeSystem
from repro.bench import emit, emit_json, format_table, sweep

DEPTHS = [1, 2, 4, 8, 16, 32]
FANOUTS = [1, 2, 4, 8, 16, 32]

#: Pre-speculation work per process: each body performs this many logged
#: effects before it can become speculative.  Full-replay rollback pays
#: for the whole prefix again on every cascade member; checkpointed
#: partial replay (``fast_rollback=True``) skips it, which is exactly the
#: asymptotic difference this sweep exposes.
PREFIX = 40


def _run_chain(depth: int, fast_rollback: bool = False, prefix: int = PREFIX) -> HopeSystem:
    system = HopeSystem(fast_rollback=fast_rollback)

    def root(p):
        for _ in range(prefix):
            yield p.now()                    # definite pre-guess history
        x = yield p.aid_init("x")
        yield p.send("judge", x)
        if (yield p.guess(x)):
            yield p.send("n0", 0)
        yield p.compute(1.0)

    def relay(p, i):
        for _ in range(prefix):
            yield p.now()                    # definite pre-recv history
        msg = yield p.recv()
        yield p.compute(1.0)
        if i + 1 < depth:
            yield p.send(f"n{i + 1}", i + 1)

    def judge(p):
        msg = yield p.recv()
        yield p.compute(3.0 * depth)         # let the chain fully extend
        yield p.deny(msg.payload)

    system.spawn("root", root)
    system.spawn("judge", judge)
    for i in range(depth):
        system.spawn(f"n{i}", relay, i)
    system.run(max_events=2_000_000)
    return system


def _run_fanout(fanout: int) -> HopeSystem:
    system = HopeSystem()

    def root(p):
        x = yield p.aid_init("x")
        yield p.send("judge", x)
        if (yield p.guess(x)):
            for i in range(fanout):
                yield p.send(f"leaf-{i}", i)
        yield p.compute(1.0)

    def leaf(p):
        msg = yield p.recv()
        yield p.compute(5.0)

    def judge(p):
        msg = yield p.recv()
        yield p.compute(3.0)
        yield p.deny(msg.payload)

    system.spawn("root", root)
    system.spawn("judge", judge)
    for i in range(fanout):
        system.spawn(f"leaf-{i}", leaf)
    system.run(max_events=2_000_000)
    return system


def chain_metrics(depth: int) -> dict:
    base = _run_chain(depth).stats()
    fast = _run_chain(depth, fast_rollback=True).stats()
    assert fast["rollbacks"] == base["rollbacks"]
    return {
        "rollbacks": base["rollbacks"],
        "replayed_effects": base["replayed_effects"],
        "fast_replayed": fast["replayed_effects"],
        "fast_skipped": fast["replay_skipped_entries"],
        "wasted_time": base["wasted_time"],
        "sim_events": base["sim_events"],
    }


def fanout_metrics(fanout: int) -> dict:
    system = _run_fanout(fanout)
    stats = system.stats()
    return {
        "rollbacks": stats["rollbacks"],
        "replayed_effects": stats["replayed_effects"],
        "wasted_time": stats["wasted_time"],
        "sim_events": stats["sim_events"],
    }


def test_rollback_cascade_depth(benchmark):
    result = sweep("chain depth", DEPTHS, chain_metrics)
    metrics = [
        "rollbacks",
        "replayed_effects",
        "fast_replayed",
        "fast_skipped",
        "wasted_time",
        "sim_events",
    ]
    emit(
        "rollback_cascade_depth",
        format_table(
            "CASCADE — transitive rollback vs speculation chain depth",
            result.headers(metrics),
            result.rows(metrics),
        ),
    )
    emit_json(
        "BENCH_1",
        "rollback_cascade",
        {
            "prefix_effects_per_process": PREFIX,
            "points": [
                dict(zip(["depth"] + metrics, row)) for row in result.rows(metrics)
            ],
        },
    )
    rollbacks = result.column("rollbacks")
    # every relay that received the speculative message must roll back
    assert rollbacks == [d + 1 for d in DEPTHS]
    # cascade cost scales linearly-ish with depth, not worse
    events = result.column("sim_events")
    assert events[-1] < events[0] * (DEPTHS[-1] / DEPTHS[0]) * 3
    # checkpointed partial replay: no cascade member rewinds to log entry
    # 0 — the pre-guess prefix is skipped, so at depth 32 the replayed
    # entry count collapses versus full replay.
    base_replayed = result.column("replayed_effects")
    fast_replayed = result.column("fast_replayed")
    fast_skipped = result.column("fast_skipped")
    assert fast_replayed[-1] < base_replayed[-1]
    assert fast_skipped[-1] >= PREFIX * DEPTHS[-1]
    benchmark(lambda: _run_chain(16))


def test_rollback_cascade_fanout(benchmark):
    result = sweep("fan-out", FANOUTS, fanout_metrics)
    metrics = ["rollbacks", "replayed_effects", "wasted_time", "sim_events"]
    emit(
        "rollback_cascade_fanout",
        format_table(
            "CASCADE — transitive rollback vs speculative fan-out",
            result.headers(metrics),
            result.rows(metrics),
        ),
    )
    rollbacks = result.column("rollbacks")
    assert rollbacks == [f + 1 for f in FANOUTS]
    wasted = result.column("wasted_time")
    assert wasted == sorted(wasted)
    benchmark(lambda: _run_fanout(16))
