"""Experiment THM: the paper's theorems, checked over randomized runs.

The §5–6 proofs are verified three ways in this repo: unit tests on the
abstract machine, hypothesis property tests, and this bench — a
model-checking campaign over randomized schedules that must find zero
violations while exercising a healthy number of rollbacks.  The bench
keeps the campaign honest (it reports how much behaviour was covered)
and tracks the harness's own throughput.
"""

from repro.bench import emit, format_table
from repro.verify import explore


def run_campaign(n_runs: int, root_seed: int, aid_mode: str, shuffle: bool = False):
    report = explore(
        n_runs=n_runs, root_seed=root_seed, aid_mode=aid_mode,
        shuffle_ties=shuffle,
    )
    rollbacks = sum(run.rollbacks for run in report.runs)
    return report, rollbacks


def test_model_check_campaign(benchmark):
    rows = []
    for label, aid_mode, shuffle in (
        ("registry", "registry", False),
        ("aid_task", "aid_task", False),
        ("registry+shuffle", "registry", True),
    ):
        report, rollbacks = run_campaign(80, 23, aid_mode, shuffle)
        assert report.ok, report.summary()
        rows.append(
            [label, len(report.runs), len(report.failures), rollbacks]
        )
    emit(
        "model_check",
        format_table(
            "THM — randomized model-checking campaign (80 runs per mode)",
            ["mode", "runs", "violations", "rollbacks exercised"],
            rows,
        ),
    )
    benchmark(lambda: explore(n_runs=10, root_seed=99))
