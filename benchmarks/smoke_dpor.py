"""CI smoke: DPOR enumeration of the standard matrix, deterministically.

Sweeps :func:`repro.verify.standard_scenarios` with the DPOR explorer —
twice — and fails if

* any scenario fails to enumerate completely within ``dpor_max_schedules``
  executions (the reduction regressed into a blow-up, or a scenario grew
  an unbounded branch),
* any explored execution violates an invariant, the reference oracle, or
  the blocking-twin ledger comparison,
* the two sweeps disagree on per-scenario schedule counts or on any
  run's trace fingerprint — directed exploration is deterministic by
  construction, so drift means event identity ``(label, seq)`` or
  footprint extraction regressed,
* fewer than ``dpor_min_scenarios`` scenarios ran, or the whole double
  sweep exceeds ``dpor_max_wall_s``.

Everything is seeded and latency is constant: a failure here is a real
regression, never flake.

Usage::

    PYTHONPATH=src python benchmarks/smoke_dpor.py
"""

import json
import os
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))


def sweep(max_schedules: int) -> list:
    from repro.verify import DporExplorer, standard_scenarios

    reports = []
    for scenario in standard_scenarios():
        explorer = DporExplorer(
            scenario, latency=0.5, max_schedules=max_schedules
        )
        reports.append(explorer.explore())
    return reports


def main() -> int:
    with open(os.path.join(HERE, "overhead_threshold.json"), encoding="utf-8") as fh:
        budget = json.load(fh)
    min_scenarios = budget["dpor_min_scenarios"]
    max_schedules = budget["dpor_max_schedules"]
    max_wall = budget["dpor_max_wall_s"]

    started = time.perf_counter()
    first = sweep(max_schedules)
    second = sweep(max_schedules)
    wall = time.perf_counter() - started

    failed = False
    for report in first:
        print(report.summary())
        if not report.complete:
            print(f"FAIL: {report.scenario} exhausted the "
                  f"{max_schedules}-schedule budget")
            failed = True
        if report.failures:
            print(f"FAIL: {report.scenario} has "
                  f"{len(report.failures)} failing schedule(s)")
            failed = True
    counts_a = [(r.scenario, r.schedules) for r in first]
    counts_b = [(r.scenario, r.schedules) for r in second]
    if counts_a != counts_b:
        print(f"FAIL: schedule counts drifted across sweeps:\n"
              f"  first:  {counts_a}\n  second: {counts_b}")
        failed = True
    for ra, rb in zip(first, second):
        fps_a = [run.fingerprint for run in ra.runs]
        fps_b = [run.fingerprint for run in rb.runs]
        if fps_a != fps_b:
            print(f"FAIL: {ra.scenario} trace fingerprints drifted across sweeps")
            failed = True
    total = sum(r.schedules for r in first)
    print(f"dpor smoke: {len(first)} scenarios, {total} schedules x2 sweeps "
          f"in {wall:.2f}s (budget: >= {min_scenarios} scenarios, "
          f"<= {max_wall}s)")
    if len(first) < min_scenarios:
        print(f"FAIL: only {len(first)} scenarios ran, budget requires "
              f">= {min_scenarios}")
        failed = True
    if wall > max_wall:
        print(f"FAIL: dpor sweep took {wall:.2f}s, budget is {max_wall}s")
        failed = True
    if failed:
        return 1
    print("dpor smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
