"""Ablation: what exactly does speculation buy?

Three executions of the report workload, all committing the identical
ledger:

* **figure1** — the pessimistic program (synchronous RPCs, no WorryWart);
* **blocking** — the *Figure 2 program* with ``speculation=False``: the
  structure (parallel WorryWart verification) without the optimism
  (guesses block until verdicts arrive);
* **hope** — full speculation.

The gap between figure1 and blocking is what *restructuring* buys; the
gap between blocking and hope is what *optimism itself* buys — the
decomposition the paper's §2/§3 argument implies but never measures.
"""

from repro.apps.call_streaming import (
    expected_output,
    oneway_gateway,
    optimistic_worker,
    print_server,
    run_pessimistic,
    worrywart,
)
from repro.bench import emit, format_table, streaming_config, sweep
from repro.runtime import HopeSystem
from repro.sim import ConstantLatency, LinkLatency

LATENCIES = [2.0, 10.0, 25.0, 50.0]


def _figure2_system(config, speculation: bool) -> HopeSystem:
    links = LinkLatency(default=ConstantLatency(config.latency))
    for w in range(config.n_warts):
        wart = f"worrywart-{w}"
        links.set_link("worker", wart, ConstantLatency(config.wart_latency))
        links.set_link(wart, "worker", ConstantLatency(config.wart_latency))
    links.set_link("server_oneway", "server", ConstantLatency(0.0))
    links.set_link("server", "server_oneway", ConstantLatency(0.0))
    system = HopeSystem(latency=links, speculation=speculation)
    system.spawn("server", print_server, config.page_size, config.server_service_time)
    system.spawn("server_oneway", oneway_gateway)
    for w in range(config.n_warts):
        expected = len(range(w, config.n_reports, config.n_warts))
        system.spawn(f"worrywart-{w}", worrywart, config, expected)
    system.spawn("worker", optimistic_worker, config)
    return system


def run_latency(latency: float) -> dict:
    config = streaming_config(n_reports=10, latency=latency)
    reference = expected_output(config)
    figure1 = run_pessimistic(config).makespan
    blocking_system = _figure2_system(config, speculation=False)
    blocking = blocking_system.run(max_events=2_000_000)
    assert blocking_system.committed_outputs("server") == reference
    hope_system = _figure2_system(config, speculation=True)
    hope = hope_system.run(max_events=2_000_000)
    assert hope_system.committed_outputs("server") == reference
    return {
        "figure1": figure1,
        "blocking": blocking,
        "hope": hope,
        "restructure_gain_pct": 100 * (figure1 - blocking) / figure1,
        "optimism_gain_pct": 100 * (blocking - hope) / blocking,
    }


def test_speculation_toggle(benchmark):
    result = sweep("latency", LATENCIES, run_latency)
    metrics = [
        "figure1",
        "blocking",
        "hope",
        "restructure_gain_pct",
        "optimism_gain_pct",
    ]
    emit(
        "speculation_toggle",
        format_table(
            "ABLATION — restructuring vs optimism (10 reports, identical ledger)",
            result.headers(metrics),
            result.rows(metrics),
        ),
    )
    for figure1, blocking, hope in zip(
        result.column("figure1"), result.column("blocking"), result.column("hope")
    ):
        assert hope < blocking <= figure1 * 1.01
    # optimism itself contributes substantially, beyond restructuring
    assert min(result.column("optimism_gain_pct")) > 20.0
    config = streaming_config(n_reports=10, latency=25.0)
    benchmark(lambda: _figure2_system(config, True).run(max_events=2_000_000))
