"""Experiment TRACK: the cost of automatic dependency tracking.

§7: "the implementation never forces a user process to wait for a HOPE
dependency tracking message before proceeding."  Two measurements:

* *virtual* overhead — zero by design: a ping-pong workload's makespan is
  identical with tracking active (speculative) and inactive (definite);
* *mechanical* overhead — tags attached, control messages, and wall time
  per message, HOPE runtime vs the bare simulator.
"""

import time

from repro.runtime import HopeSystem
from repro.sim import ConstantLatency, Network, Recv, Simulator, Task
from repro.bench import emit, emit_json, format_table, sweep

N_MESSAGES = [50, 100, 200]

#: Wall times are min-of-REPEATS: the interesting quantity is the
#: mechanical cost of the code path, and the minimum is the standard
#: noise-robust estimator for that (everything above it is scheduler
#: jitter).  Virtual-time results are deterministic and unaffected.
REPEATS = 5

#: The seed revision's committed numbers (benchmarks/results/
#: tracking_overhead.txt at the "growth seed" commit) — the "before" in
#: the before/after comparison this file now reports.  Wall milliseconds.
SEED_WALL_MS = {
    50: {"bare": 0.6230, "hope": 2.15, "spec": 2.51},
    100: {"bare": 1.22, "hope": 3.24, "spec": 4.01},
    200: {"bare": 2.30, "hope": 6.65, "spec": 8.99},
}


def _bare_pingpong(n: int) -> dict:
    """The same message pattern on the raw simulator (no HOPE at all)."""
    sim = Simulator()
    net = Network(sim, ConstantLatency(1.0))
    net.register("a")
    net.register("b")

    def side(env, me, peer, starts):
        box = net.mailbox(me)
        if starts:
            net.send(me, peer, 0)
        for _ in range(n):
            msg = yield Recv(box)
            if msg.payload + 1 < 2 * n:
                net.send(me, peer, msg.payload + 1)

    Task(sim, "a", side, "a", "b", True).start()
    Task(sim, "b", side, "b", "a", False).start()
    start = time.perf_counter()
    makespan = sim.run()
    wall = time.perf_counter() - start
    return {"makespan": makespan, "wall_s": wall, "events": sim.events_processed}


def _hope_pingpong(
    n: int, speculative: bool, metrics=None, kernel: str = "wheel"
) -> dict:
    system = HopeSystem(latency=ConstantLatency(1.0), metrics=metrics, kernel=kernel)

    def side(p, me, peer, starts):
        if starts and speculative:
            x = yield p.aid_init("x")
            yield p.guess(x)               # everything below is speculative
        if starts:
            yield p.send(peer, 0)
        for _ in range(n):
            msg = yield p.recv()
            if msg.payload + 1 < 2 * n:
                yield p.send(peer, msg.payload + 1)

    system.spawn("a", side, "a", "b", True)
    system.spawn("b", side, "b", "a", False)
    start = time.perf_counter()
    makespan = system.run(max_events=5_000_000)
    wall = time.perf_counter() - start
    stats = system.stats()
    return {
        "makespan": makespan,
        "wall_s": wall,
        "events": stats["sim_events"],
        "tags": stats["tags_attached"],
    }


def run_point(n: int, repeats: int = REPEATS) -> dict:
    # Interleave the three modes per rep (rather than batching each mode)
    # so a machine-speed swing hits all modes alike: the ratio of two
    # interleaved minima cancels drift that the ratio of two batch minima
    # (possibly seconds apart) does not.
    bares, definites, specs = [], [], []
    for _ in range(repeats):
        bares.append(_bare_pingpong(n))
        definites.append(_hope_pingpong(n, speculative=False))
        specs.append(_hope_pingpong(n, speculative=True))
    bare, definite, spec = bares[0], definites[0], specs[0]
    bare_ms = 1000 * min(r["wall_s"] for r in bares)
    hope_ms = 1000 * min(r["wall_s"] for r in definites)
    spec_ms = 1000 * min(r["wall_s"] for r in specs)
    seed = SEED_WALL_MS.get(n)
    seed_ratio = seed["hope"] / seed["bare"] if seed else None
    ratio = hope_ms / bare_ms
    return {
        "bare_makespan": bare["makespan"],
        "hope_makespan": definite["makespan"],
        "spec_makespan": spec["makespan"],
        "tags_spec": spec["tags"],
        "bare_wall_ms": bare_ms,
        "hope_wall_ms": hope_ms,
        "spec_wall_ms": spec_ms,
        "overhead_ratio": ratio,
        "seed_ratio": seed_ratio if seed_ratio is not None else float("nan"),
        "improvement": (seed_ratio / ratio) if seed_ratio else float("nan"),
    }


def test_tracking_overhead(benchmark):
    result = sweep("messages", N_MESSAGES, run_point)
    metrics = [
        "bare_makespan",
        "hope_makespan",
        "spec_makespan",
        "tags_spec",
        "bare_wall_ms",
        "hope_wall_ms",
        "spec_wall_ms",
        "overhead_ratio",
        "seed_ratio",
        "improvement",
    ]
    emit(
        "tracking_overhead",
        format_table(
            "TRACK — dependency tracking never blocks the user process",
            result.headers(metrics),
            result.rows(metrics),
        ),
    )
    points = [
        dict(zip(["messages"] + metrics, row)) for row in result.rows(metrics)
    ]
    emit_json(
        "BENCH_1",
        "tracking_overhead",
        {
            "metric": "hope_wall_ms / bare_wall_ms (min of %d reps)" % REPEATS,
            "seed_wall_ms": SEED_WALL_MS,
            "points": points,
        },
    )
    # the §7 property, exactly: tracking costs zero *virtual* time
    assert result.column("bare_makespan") == result.column("hope_makespan")
    assert result.column("hope_makespan") == result.column("spec_makespan")
    # speculative runs really did tag traffic
    assert all(t > 0 for t in result.column("tags_spec"))
    # regression tripwire: interning/caching/trampoline work cut the n=200
    # overhead ratio from ~2.9x to ~1.8x, the timer-wheel kernel + batched
    # dispatch cut it to ~1.3x, and the round-2 hot-path sweep (hope-only
    # frame cuts; docs/PERFORMANCE.md §8) to ~0.78-1.15.  This single-shot
    # assert only guards against a return to pre-wheel ratios; the tight
    # ≤1.2 budget is enforced best-of-attempts by smoke_overhead.py (a
    # single noisy run on a busy CI box must not flake the whole bench job).
    assert points[-1]["overhead_ratio"] <= 1.75, points[-1]
    benchmark(lambda: _hope_pingpong(100, speculative=True))
