"""Experiment TRACK: the cost of automatic dependency tracking.

§7: "the implementation never forces a user process to wait for a HOPE
dependency tracking message before proceeding."  Two measurements:

* *virtual* overhead — zero by design: a ping-pong workload's makespan is
  identical with tracking active (speculative) and inactive (definite);
* *mechanical* overhead — tags attached, control messages, and wall time
  per message, HOPE runtime vs the bare simulator.
"""

import time

from repro.runtime import HopeSystem
from repro.sim import ConstantLatency, Network, Recv, Simulator, Task
from repro.bench import emit, format_table, sweep

N_MESSAGES = [50, 100, 200]


def _bare_pingpong(n: int) -> dict:
    """The same message pattern on the raw simulator (no HOPE at all)."""
    sim = Simulator()
    net = Network(sim, ConstantLatency(1.0))
    net.register("a")
    net.register("b")

    def side(env, me, peer, starts):
        box = net.mailbox(me)
        if starts:
            net.send(me, peer, 0)
        for _ in range(n):
            msg = yield Recv(box)
            if msg.payload + 1 < 2 * n:
                net.send(me, peer, msg.payload + 1)

    Task(sim, "a", side, "a", "b", True).start()
    Task(sim, "b", side, "b", "a", False).start()
    start = time.perf_counter()
    makespan = sim.run()
    wall = time.perf_counter() - start
    return {"makespan": makespan, "wall_s": wall, "events": sim.events_processed}


def _hope_pingpong(n: int, speculative: bool) -> dict:
    system = HopeSystem(latency=ConstantLatency(1.0))

    def side(p, me, peer, starts):
        if starts and speculative:
            x = yield p.aid_init("x")
            yield p.guess(x)               # everything below is speculative
        if starts:
            yield p.send(peer, 0)
        for _ in range(n):
            msg = yield p.recv()
            if msg.payload + 1 < 2 * n:
                yield p.send(peer, msg.payload + 1)

    system.spawn("a", side, "a", "b", True)
    system.spawn("b", side, "b", "a", False)
    start = time.perf_counter()
    makespan = system.run(max_events=5_000_000)
    wall = time.perf_counter() - start
    stats = system.stats()
    return {
        "makespan": makespan,
        "wall_s": wall,
        "events": stats["sim_events"],
        "tags": stats["tags_attached"],
    }


def run_point(n: int) -> dict:
    bare = _bare_pingpong(n)
    definite = _hope_pingpong(n, speculative=False)
    spec = _hope_pingpong(n, speculative=True)
    return {
        "bare_makespan": bare["makespan"],
        "hope_makespan": definite["makespan"],
        "spec_makespan": spec["makespan"],
        "tags_spec": spec["tags"],
        "bare_wall_ms": 1000 * bare["wall_s"],
        "hope_wall_ms": 1000 * definite["wall_s"],
        "spec_wall_ms": 1000 * spec["wall_s"],
    }


def test_tracking_overhead(benchmark):
    result = sweep("messages", N_MESSAGES, run_point)
    metrics = [
        "bare_makespan",
        "hope_makespan",
        "spec_makespan",
        "tags_spec",
        "bare_wall_ms",
        "hope_wall_ms",
        "spec_wall_ms",
    ]
    emit(
        "tracking_overhead",
        format_table(
            "TRACK — dependency tracking never blocks the user process",
            result.headers(metrics),
            result.rows(metrics),
        ),
    )
    # the §7 property, exactly: tracking costs zero *virtual* time
    assert result.column("bare_makespan") == result.column("hope_makespan")
    assert result.column("hope_makespan") == result.column("spec_makespan")
    # speculative runs really did tag traffic
    assert all(t > 0 for t in result.column("tags_spec"))
    benchmark(lambda: _hope_pingpong(100, speculative=True))
