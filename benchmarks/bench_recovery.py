"""Experiment (extension): the price and payoff of logging optimism.

Strom & Yemini's insight, measured: a sender that waits for every stable
write pays the disk latency on the critical path; the optimistic sender
streams ahead while writes drain in the background, paying only when a
crash orphans the unflushed window.

* Sweep 1 — failure-free overhead vs. disk write latency: optimistic
  logging's makespan stays flat while synchronous logging degrades
  linearly.
* Sweep 2 — crash recovery cost vs. volatile buffer size (flush_every):
  bigger buffers stream faster but orphan more on a crash.
"""

from repro.apps.recovery import (
    RecoveryConfig,
    disk,
    receiver,
    reference_ledger,
    run_recovery,
    sender,
)
from repro.bench import emit, format_table, sweep
from repro.runtime import HopeSystem, call
from repro.sim import ConstantLatency

WRITE_LATENCIES = [1.0, 4.0, 8.0, 16.0]
FLUSH_SIZES = [1, 2, 4, 8]


def sync_sender(p, config: RecoveryConfig):
    """The pessimistic comparator: stable-write *then* send, per item."""
    corr = int((yield p.random()) * 1_000_000_000) * 1000
    for index, item in enumerate(config.items):
        yield from call(p, "disk", ("intent", index, f"sync-{index}"), corr)
        corr += 1
        yield from call(p, "disk", ("write", index), corr)   # wait for stability
        corr += 1
        yield p.send("receiver", ("item", index, item))
        yield p.compute(config.send_spacing)
    yield p.send("receiver", ("end", len(config.items)))
    while True:
        yield p.recv()                    # absorb stray replay requests


def _run_sync(config: RecoveryConfig) -> float:
    system = HopeSystem(latency=ConstantLatency(config.latency))
    system.spawn("disk", disk, config.log_write_latency)
    system.spawn("sender", sync_sender, config)
    system.spawn("receiver", receiver, config)
    makespan = system.run(max_events=5_000_000)
    assert system.committed_outputs("disk") == reference_ledger(config)
    return makespan


def run_write_latency(write_latency: float) -> dict:
    config = RecoveryConfig(
        items=tuple(range(10)), log_write_latency=write_latency
    )
    optimistic = run_recovery(config)
    assert optimistic.ledger == reference_ledger(config)
    sync_makespan = _run_sync(config)
    return {
        "optimistic": optimistic.makespan,
        "synchronous": sync_makespan,
        "gain_pct": 100 * (sync_makespan - optimistic.makespan) / sync_makespan,
    }


def run_flush_size(flush_every: int) -> dict:
    config = RecoveryConfig(
        items=tuple(range(12)), log_write_latency=6.0, flush_every=flush_every
    )
    clean = run_recovery(config)
    crashed = run_recovery(config, crash_sender_at=[11.0], restart_after=2.0)
    assert clean.ledger == reference_ledger(config)
    assert crashed.ledger == reference_ledger(config)
    return {
        "clean_makespan": clean.makespan,
        "crash_makespan": crashed.makespan,
        "crash_penalty": crashed.makespan - clean.makespan,
        "rollbacks": crashed.rollbacks,
    }


def test_recovery_logging_overhead(benchmark):
    result = sweep("write latency", WRITE_LATENCIES, run_write_latency)
    metrics = ["optimistic", "synchronous", "gain_pct"]
    emit(
        "recovery_overhead",
        format_table(
            "RECOVERY — optimistic vs synchronous logging (10 items, no crash)",
            result.headers(metrics),
            result.rows(metrics),
        ),
    )
    opt = result.column("optimistic")
    sync = result.column("synchronous")
    # synchronous degrades with disk latency; optimism hides it
    assert sync[-1] > sync[0] * 1.5
    assert opt[-1] < sync[-1]
    assert max(opt) - min(opt) < max(sync) - min(sync)
    config = RecoveryConfig(items=tuple(range(10)), log_write_latency=8.0)
    benchmark(lambda: run_recovery(config))


def test_recovery_flush_window(benchmark):
    result = sweep("flush_every", FLUSH_SIZES, run_flush_size)
    metrics = ["clean_makespan", "crash_makespan", "crash_penalty", "rollbacks"]
    emit(
        "recovery_flush_window",
        format_table(
            "RECOVERY — volatile buffer size vs crash penalty "
            "(12 items, crash at t=11)",
            result.headers(metrics),
            result.rows(metrics),
        ),
    )
    # exactly-once held everywhere (asserted inside run_flush_size)
    assert all(r >= 0 for r in result.column("rollbacks"))
    config = RecoveryConfig(items=tuple(range(12)), log_write_latency=6.0)
    benchmark(lambda: run_recovery(config, crash_sender_at=[11.0], restart_after=2.0))
