"""Experiment CKPT: the checkpoint/rollback mechanism's cost.

§7: "the present checkpoint mechanism is simple and fairly portable, but
not particularly efficient."  Ours substitutes deterministic replay
(DESIGN.md §2): restoring a checkpoint replays the effect log prefix.
Two measurements:

* replay cost vs pre-guess history length — wall-clock of a rollback
  whose checkpoint sits behind N logged effects;
* the Time Warp twin: state-saving interval vs rollback cost (save every
  event = cheap rollback, sparse saves = coast-forward re-execution).

Both measurements run the default full-replay mode deliberately: this
file IS the cost being measured.  ``HopeSystem(fast_rollback=True)``
removes the prefix-proportional term via shadow-checkpoint promotion —
see bench_rollback_cascade.py and docs/PERFORMANCE.md §3.
"""

import time

from repro.baselines.timewarp import LogicalProcess, TWMessage
from repro.bench import emit, format_table, sweep
from repro.runtime import HopeSystem

PREFIX_LENGTHS = [10, 50, 200, 800]
SAVE_INTERVALS = [1, 2, 4, 8, 16]


def _rollback_run(prefix: int) -> dict:
    system = HopeSystem()

    def worker(p):
        for i in range(prefix):            # pre-guess history to replay
            yield p.random()
        x = yield p.aid_init("x")
        yield p.send("judge", x)
        if (yield p.guess(x)):
            yield p.compute(5.0)

    def judge(p):
        msg = yield p.recv()
        yield p.compute(1.0)
        yield p.deny(msg.payload)

    system.spawn("worker", worker)
    system.spawn("judge", judge)
    start = time.perf_counter()
    system.run(max_events=5_000_000)
    wall = time.perf_counter() - start
    stats = system.stats()
    assert stats["rollbacks"] == 1
    return {
        "replayed_effects": stats["replayed_effects"],
        "wall_ms": 1000 * wall,
        "sim_events": stats["sim_events"],
    }


def _tw_save_interval_run(save_interval: int) -> dict:
    """One straggler against a long processed history."""
    lp = LogicalProcess(
        "sink",
        lambda state, vt, payload: state.__setitem__("n", state["n"] + 1) or [],
        {"n": 0, "blob": list(range(256))},
        save_interval=save_interval,
    )
    for i in range(200):
        lp.insert(TWMessage("env", "sink", 0.0, 10.0 + i, i))
        lp.process_next()
    start = time.perf_counter()
    # straggler ~45 events from the end, deliberately misaligned with the
    # save grid: sparse saves must coast-forward further back than dense
    lp.insert(TWMessage("env", "sink", 0.0, 10.0 + 154.3, -1))
    while lp.has_work:
        lp.process_next()
    wall = time.perf_counter() - start
    return {
        "events_redone": lp.events_rolled_back,
        "saves_retained": len(lp.saves),
        "wall_ms": 1000 * wall,
        "memory_proxy": lp.memory_footprint(),
    }


def test_replay_checkpoint_cost(benchmark):
    result = sweep("log prefix", PREFIX_LENGTHS, _rollback_run)
    metrics = ["replayed_effects", "wall_ms", "sim_events"]
    emit(
        "checkpoint_replay",
        format_table(
            "CKPT — replay-based checkpoint restore vs history length",
            result.headers(metrics),
            result.rows(metrics),
        ),
    )
    replayed = result.column("replayed_effects")
    # replay work is exactly the pre-guess prefix (+aid_init/send/guess)
    assert all(r >= n for r, n in zip(replayed, PREFIX_LENGTHS))
    assert replayed == sorted(replayed)
    benchmark(lambda: _rollback_run(200))


def test_timewarp_save_interval_ablation(benchmark):
    result = sweep("save interval", SAVE_INTERVALS, _tw_save_interval_run)
    metrics = ["events_redone", "saves_retained", "wall_ms", "memory_proxy"]
    emit(
        "checkpoint_tw_ablation",
        format_table(
            "CKPT — Time Warp state-saving interval ablation (200 events)",
            result.headers(metrics),
            result.rows(metrics),
        ),
    )
    # sparser saves retain less memory but redo (weakly) more events
    memory = result.column("memory_proxy")
    assert memory == sorted(memory, reverse=True)
    redone = result.column("events_redone")
    assert redone == sorted(redone)
    assert redone[-1] > redone[0]
    benchmark(lambda: _tw_save_interval_run(4))
