"""Experiment PARSCALE: real-parallel backend scaling + sim differential.

Sweeps the fan-out and replication workloads over the sim backend and
the parallel backend at 1/2/4 workers, measuring:

* **aggregate events/sec** — total simulator events processed across all
  shards divided by wall time (the classic PDES throughput number; note
  it counts speculative re-execution as work, which the parallel
  backend's delayed cross-shard resolutions produce more of);
* **useful events/sec** — the 1-worker run's event count divided by this
  run's wall time (credits only the work the computation needs);
* the **differential oracle**: every configuration's committed-state
  fingerprint must equal the sim twin's, always, on every box.

The ≥2x-at-4-workers budget (``min_parallel_speedup_4w`` in
overhead_threshold.json) is judged on aggregate events/sec for the
fan-out workload with co-located pairs — the backend's best case — and
only on machines with >= ``parallel_min_cpus`` cores: with fewer cores
the workers time-slice one CPU and the window protocol is pure
overhead, so the gate would measure the box, not the code.  The sweep
still runs and records its numbers (plus the core count) on any box.

Also records the wheel-kernel chain-shape parity (the sparse fast path:
wheel must stay within 5% of the heap on chain workloads — the
regression this PR's kernel satellite fixed).

Writes ``BENCH_4.json`` sections ``parallel_scaling`` and
``chain_parity``.
"""

import json
import os
import time

from repro import HopeSystem
from repro.bench import emit, emit_json, format_table
from repro.bench.workloads import build_fanout, build_replication
from repro.chaos import committed_state
from repro.sim import Simulator
from repro.sim.latency import ConstantLatency

PAIRS = 8
ROUNDS = 40
REPLICAS = 6
UPDATES = 30
REPEATS = 3
BAR_ATTEMPTS = 3
WORKER_COUNTS = (1, 2, 4)
SEED = 0
CHAIN_EVENTS = 20_000
CHAIN_REPEATS = 5


def _fanout_build(system):
    build_fanout(system, pairs=PAIRS, rounds=ROUNDS)


def _fanout_placement(workers: int) -> dict:
    # Co-locate each worker/validator pair: cross-shard traffic is then
    # resolutions only, the backend's intended sweet spot.
    return {
        f"{prefix}{i}": i % workers
        for i in range(PAIRS)
        for prefix in ("fv", "fw")
    }


def _replication_build(system):
    build_replication(system, replicas=REPLICAS, updates=UPDATES)


WORKLOADS = {
    "fanout": (_fanout_build, _fanout_placement),
    "replication": (_replication_build, None),
}


def _run_once(build, backend, workers=None, placement=None):
    opts = {"placement": placement} if placement else None
    start = time.perf_counter()
    system = HopeSystem(
        seed=SEED, latency=ConstantLatency(1.0), backend=backend,
        workers=workers, parallel_opts=opts,
    )
    build(system)
    system.run(max_events=2_000_000)
    wall = time.perf_counter() - start
    return system, wall


def _measure(build, backend, workers=None, placement=None):
    """Best-of-REPEATS wall; fingerprint from the first run."""
    system, wall = _run_once(build, backend, workers, placement)
    fingerprint = committed_state(system)
    events = system.stats()["sim_events"]
    for _ in range(REPEATS - 1):
        _sys, again = _run_once(build, backend, workers, placement)
        wall = min(wall, again)
    return {"wall": wall, "events": events, "fingerprint": fingerprint}


def run_scaling() -> dict:
    results: dict = {"cpus": os.cpu_count() or 1, "workloads": {}}
    for name, (build, placement_fn) in WORKLOADS.items():
        sim = _measure(build, "sim")
        rows = {"sim": {"wall_s": round(sim["wall"], 4),
                        "events": sim["events"],
                        "events_per_sec": round(sim["events"] / sim["wall"])}}
        base_events = None
        base_evsec = None
        for workers in WORKER_COUNTS:
            placement = placement_fn(workers) if placement_fn else None
            par = _measure(build, "parallel", workers, placement)
            assert par["fingerprint"] == sim["fingerprint"], (
                f"differential oracle failed: {name} at {workers} workers "
                "diverged from the sim twin"
            )
            evsec = par["events"] / par["wall"]
            if base_events is None:
                base_events, base_evsec = par["events"], evsec
            rows[f"parallel_{workers}w"] = {
                "wall_s": round(par["wall"], 4),
                "events": par["events"],
                "events_per_sec": round(evsec),
                "useful_events_per_sec": round(base_events / par["wall"]),
                "speedup_vs_1w": round(evsec / base_evsec, 3),
            }
        results["workloads"][name] = rows
    return results


# ---------------------------------------------------------------------------
# chain parity (the wheel sparse fast path, satellite of this PR)
# ---------------------------------------------------------------------------
def _chain(sim: Simulator, n: int) -> None:
    remaining = [n]

    def step() -> None:
        remaining[0] -= 1
        if remaining[0]:
            sim.schedule(0.37, step)

    sim.schedule(0.37, step)
    sim.run()
    assert sim.events_processed == n


def run_chain_parity() -> dict:
    walls = {"heap": float("inf"), "wheel": float("inf")}
    for _ in range(CHAIN_REPEATS):
        for kernel in walls:   # interleaved: noise hits both alike
            sim = Simulator(kernel=kernel)
            start = time.perf_counter()
            _chain(sim, CHAIN_EVENTS)
            walls[kernel] = min(walls[kernel], time.perf_counter() - start)
    return {
        "events": CHAIN_EVENTS,
        "heap_events_per_sec": round(CHAIN_EVENTS / walls["heap"]),
        "wheel_events_per_sec": round(CHAIN_EVENTS / walls["wheel"]),
        "wheel_vs_heap": round(walls["heap"] / walls["wheel"], 3),
    }


def _budget() -> dict:
    path = os.path.join(os.path.dirname(__file__), "overhead_threshold.json")
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _emit_all(results: dict, parity: dict) -> None:
    headers = ["workload", "config", "wall s", "events", "ev/s",
               "useful ev/s", "speedup vs 1w"]
    table_rows = []
    for name, rows in results["workloads"].items():
        for config, row in rows.items():
            table_rows.append([
                name, config, row["wall_s"], row["events"],
                row["events_per_sec"],
                row.get("useful_events_per_sec", ""),
                row.get("speedup_vs_1w", ""),
            ])
    emit("parallel_scaling", format_table(
        f"PARSCALE: parallel backend scaling ({results['cpus']} cpus)",
        headers, table_rows,
    ))
    emit_json("BENCH_4", "parallel_scaling", results)
    emit_json("BENCH_4", "chain_parity", parity)


def test_parallel_scaling_and_chain_parity():
    budget = _budget()
    results = run_scaling()
    parity = run_chain_parity()
    for _ in range(BAR_ATTEMPTS - 1):
        if parity["wheel_vs_heap"] >= 0.95:
            break
        again = run_chain_parity()
        if again["wheel_vs_heap"] > parity["wheel_vs_heap"]:
            parity = again
    assert parity["wheel_vs_heap"] >= 0.95, parity

    min_cpus = budget.get("parallel_min_cpus", 4)
    floor = budget.get("min_parallel_speedup_4w", 2.0)
    fanout = results["workloads"]["fanout"]
    speedup = fanout["parallel_4w"]["speedup_vs_1w"]
    if results["cpus"] >= min_cpus:
        for _ in range(BAR_ATTEMPTS - 1):
            if speedup >= floor:
                break
            results = run_scaling()
            fanout = results["workloads"]["fanout"]
            speedup = fanout["parallel_4w"]["speedup_vs_1w"]
        assert speedup >= floor, (
            f"parallel 4-worker aggregate speedup {speedup} below "
            f"{floor} on a {results['cpus']}-cpu machine"
        )
    else:
        print(
            f"note: {results['cpus']} cpu(s) < {min_cpus} — recording "
            f"4-worker speedup {speedup} without judging the "
            f">= {floor} budget (workers time-slice one core here)"
        )
    # The oracle already ran inside run_scaling (fingerprint asserts).
    for rows in results["workloads"].values():
        del rows  # structure checked by the asserts above
    _emit_all(results, parity)


if __name__ == "__main__":
    test_parallel_scaling_and_chain_parity()
    print("PARSCALE ok")
